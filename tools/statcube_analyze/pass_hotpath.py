"""Pass 4: hot-path purity.

The morsel/kernel bodies are the code the engine runs once per row or
once per block under the parallel scheduler; a blocking operation there
serializes every worker behind it. Hot regions:

 * lambdas passed to `RunMorsels(` / `ParallelFor(` (the morsel bodies);
 * `*Block*` kernels (SumBlockOrdered & co in common/vec_block.cc);
 * functions transitively called from a hot region within the same file
   (the vec_* phase helpers: EncodeAndHash, DictCode, ...).

Flagged inside a hot region:

 * mutex acquisition (`MutexLock`, `.Lock()`) and `CondVar` waits;
 * sleeping (`sleep_for`, `usleep`);
 * IO (streams, printf-family, fopen);
 * metric-registry lookups (`GetCounter(...)` by name takes the registry
   lock — hoist the counter out of the loop like LoopOptions does);
 * allocation: `new`, `make_unique/make_shared`, and named container
   constructions (`std::vector<T> v(n)`) — per-morsel setup allocations
   are sometimes the right design, which is what justified
   suppressions are for.

Suppression key: `<path>:<region>:<category>` — one justified entry per
(region, operation-class) pair.
"""

import re

PASS_ID = "hotpath"

HOT_CALL_RE = re.compile(r"\b(RunMorsels|ParallelFor)\s*\(")
HOT_FUNC_NAME_RE = re.compile(r"\w*Block\w*")

_FLAG_PATTERNS = [
    ("mutex", re.compile(r"\bMutexLock\b|\.\s*Lock\s*\(|->\s*Lock\s*\(|"
                         r"\bCondVar\b|\.\s*Wait\s*\(")),
    ("sleep", re.compile(r"\bsleep_for\s*\(|\busleep\s*\(|"
                         r"\bstd::this_thread\b")),
    ("io", re.compile(r"\b[io]?fstream\b|\bfopen\s*\(|\bf?printf\s*\(|"
                      r"\bstd::cout\b|\bstd::cerr\b|\bsystem\s*\(")),
    ("registry", re.compile(r"\bGet(Counter|Gauge|Histogram)\s*\(")),
    ("alloc", re.compile(r"\bnew\b|\bmake_unique\s*<|\bmake_shared\s*<|"
                         r"\bstd::(vector|string|unordered_map|map|deque)\s*"
                         r"<[^;=]{0,120}>\s+\w+\s*\(")),
]

_CALL_ID_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")


def _function_bodies(ctx, relpath):
    """{function-name: (start_line, body_text, body_lines_offset)} using
    the cxxmodel scan for extents is overkill here; a simple signature
    scan over the code view recovers the free-function bodies the pass
    cares about."""
    from core import find_matching_brace
    lines = ctx.code_lines(relpath)
    sig_re = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*?([A-Za-z_]\w*)\s*\(")
    out = {}
    idx = 0
    while idx < len(lines):
        m = sig_re.match(lines[idx])
        if not m or lines[idx].lstrip().startswith(("#", "using", "return")):
            idx += 1
            continue
        name = m.group(1)
        # Find the opening brace of the body within the next few lines,
        # bailing on a ';' first (declaration, not definition).
        open_at = None
        for j in range(idx, min(idx + 8, len(lines))):
            semi = lines[j].find(";")
            brace = lines[j].find("{", m.end() if j == idx else 0)
            if brace >= 0 and (semi < 0 or brace < semi):
                open_at = (j, brace)
                break
            if semi >= 0:
                break
        if open_at is None:
            idx += 1
            continue
        end = find_matching_brace(lines, open_at[0], open_at[1])
        if end is None:
            idx += 1
            continue
        out[name] = (idx + 1, open_at[0], end[0])
        idx = end[0] + 1
    return out


def _lambda_regions(ctx, relpath):
    """Hot lambda bodies: (label, start_line_idx, end_line_idx) for every
    lambda argument of a RunMorsels/ParallelFor call."""
    from core import find_matching_brace
    lines = ctx.code_lines(relpath)
    regions = []
    for idx, line in enumerate(lines):
        m = HOT_CALL_RE.search(line)
        if not m:
            continue
        # First '[' at or after the call, within a few lines, then the
        # first '{' after its lambda intro.
        for j in range(idx, min(idx + 6, len(lines))):
            lb = lines[j].find("[", m.end() if j == idx else 0)
            if lb < 0:
                continue
            bi, bj = None, None
            for k in range(j, min(j + 4, len(lines))):
                b = lines[k].find("{", lb + 1 if k == j else 0)
                if b >= 0:
                    bi, bj = k, b
                    break
            if bi is None:
                break
            end = find_matching_brace(lines, bi, bj)
            if end is None:
                break
            regions.append((f"{m.group(1)}-lambda", idx, bi, end[0]))
            break
    return regions


def _region_findings(ctx, relpath, label, start, end, raw_lines, findings,
                     seen):
    from core import Finding
    lines = ctx.code_lines(relpath)
    body = lines[start:end + 1]
    in_static = False  # function-local `static` initializers run once
    for off, line in enumerate(body):
        if re.match(r"\s*static\b", line):
            in_static = True
        if in_static:
            if ";" in line:
                in_static = False
            continue
        for category, pat in _FLAG_PATTERNS:
            if pat.search(line):
                key = f"{relpath}:{label}:{category}"
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    PASS_ID, key, relpath, start + off + 1,
                    f"{category} operation inside hot region '{label}' "
                    "(runs per morsel/block under the scheduler); hoist it "
                    "out of the kernel or suppress with a justification"))


def _callees(ctx, relpath, start, end):
    text = "\n".join(ctx.code_lines(relpath)[start:end + 1])
    return {m.group(1) for m in _CALL_ID_RE.finditer(text)}


def run(ctx, files=None):
    files = files if files is not None else ctx.src_files()
    findings = []
    for relpath in files:
        lines_raw = ctx.raw(relpath).split("\n")
        funcs = _function_bodies(ctx, relpath)
        regions = []  # (label, body_start, body_end)
        for label, _, bi, be in _lambda_regions(ctx, relpath):
            regions.append((label, bi, be))
        for name, (sig_line, bi, be) in funcs.items():
            if HOT_FUNC_NAME_RE.fullmatch(name):
                regions.append((name, bi, be))
        # Pull in same-file helpers called from hot regions (transitively).
        hot_names = {label for label, _, _ in regions}
        frontier = list(regions)
        while frontier:
            label, bi, be = frontier.pop()
            for callee in sorted(_callees(ctx, relpath, bi, be)):
                if callee in funcs and callee not in hot_names:
                    hot_names.add(callee)
                    _, cbi, cbe = funcs[callee]
                    regions.append((callee, cbi, cbe))
                    frontier.append((callee, cbi, cbe))
        seen = set()
        for label, bi, be in regions:
            _region_findings(ctx, relpath, label, bi, be, lines_raw,
                             findings, seen)
    return findings
