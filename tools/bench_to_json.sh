#!/usr/bin/env bash
# Runs the benchmark suite with --benchmark_format=json so PRs can record
# BENCH_*.json trajectory files and compare runs over time.
#
# Usage: tools/bench_to_json.sh [name-filter]
#   BUILD_DIR (default: build)      where the bench binaries live
#   OUT_DIR   (default: bench_json) where BENCH_<name>.json files go
#   BENCH_ARGS                      extra args for every binary, e.g.
#                                   BENCH_ARGS=--benchmark_min_time=0.05
#
# Example: BENCH_ARGS=--benchmark_min_time=0.05 tools/bench_to_json.sh rolap

set -euo pipefail

usage() {
  sed -n '2,11p' "$0" | sed 's/^# \{0,1\}//'
}

case "${1:-}" in
  -h|--help)
    usage
    exit 0
    ;;
  -*)
    echo "error: unknown flag '$1' (the only positional is a name filter)" >&2
    usage >&2
    exit 2
    ;;
esac

BUILD_DIR=${BUILD_DIR:-build}
OUT_DIR=${OUT_DIR:-bench_json}
FILTER=${1:-}

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

ran=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  if [ -n "$FILTER" ] && [[ "$name" != *"$FILTER"* ]]; then
    continue
  fi
  out="$OUT_DIR/BENCH_${name}.json"
  echo "running $name -> $out"
  # shellcheck disable=SC2086
  "$bin" --benchmark_format=json --benchmark_out="$out" \
         --benchmark_out_format=json ${BENCH_ARGS:-} > /dev/null
  # A binary that exits 0 but writes nothing (e.g. a filter matching no
  # cases, or a crash swallowed by the harness) must not leave a silent
  # hole in the trajectory — fail loudly instead.
  if [ ! -s "$out" ] || ! grep -q '"benchmarks"' "$out"; then
    echo "error: $name produced no benchmark output in $out" >&2
    exit 1
  fi
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "error: no benchmark matched filter '$FILTER'" >&2
  exit 1
fi
echo "wrote $ran benchmark JSON file(s) to $OUT_DIR/"
