#!/usr/bin/env bash
# The one command that runs every gate CI runs, in dependency order:
#
#   build  ->  ctest (includes statcube-lint + its self-test and the
#              thread-safety negative-compile test)  ->  statcube-analyze
#              (whole-program layering/locks/determinism/hot-path, with
#              the compiler -MM cross-check)  ->  clang-format
#              ->  clang-tidy  ->  doxygen warning gate
#
# Steps whose tool is missing locally report SKIP and do not fail the run —
# every step is hard-gated in CI where the tools are installed. Pass --hard
# (or FORMAT_HARD=1) to make format drift fail here too.
#
# Usage: tools/check_all.sh [--hard] [build-dir]   (from the repo root)

set -uo pipefail

HARD=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --hard) HARD=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

failures=()
note() { printf '\n==== %s ====\n' "$*"; }

note "build ($BUILD_DIR)"
cmake -B "$BUILD_DIR" -S . >/dev/null && \
  cmake --build "$BUILD_DIR" -j >/dev/null || failures+=(build)

note "ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j || failures+=(ctest)

note "statcube-analyze (whole-program invariants)"
if command -v python3 >/dev/null; then
  python3 tools/statcube_analyze/analyze.py \
      --compdb "$BUILD_DIR/compile_commands.json" --mm-check \
      || failures+=(statcube-analyze)
else
  echo "SKIP: no python3"
fi

note "clang-format"
if [ "$HARD" -eq 1 ]; then
  FORMAT_HARD=1 tools/check_format.sh || failures+=(clang-format)
else
  tools/check_format.sh || { [ $? -eq 2 ] && echo "SKIP: no clang-format"; }
fi

note "clang-tidy"
tools/run_clang_tidy.sh "$BUILD_DIR"
case $? in
  0) ;;
  2) echo "SKIP: no clang-tidy" ;;
  *) failures+=(clang-tidy) ;;
esac

note "doxygen warning gate"
if command -v doxygen >/dev/null; then
  tools/check_doxygen_warnings.sh || failures+=(doxygen)
else
  echo "SKIP: no doxygen"
fi

note "summary"
if [ ${#failures[@]} -ne 0 ]; then
  echo "FAILED gates: ${failures[*]}"
  exit 1
fi
echo "all gates passed (skipped steps are enforced in CI)"
