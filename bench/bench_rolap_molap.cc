// Experiment C1 (paper §6.6 — the ROLAP vs MOLAP debate, substantiated by
// [ZDN97]) and F10 (the §4.3 observation that the relational layout stores
// the entire cross product redundantly).
// Claims: MOLAP wins aggregation when the cube is dense (arithmetic
// addressing, sequential slabs); ROLAP's storage does not blow up when the
// cube is sparse, while the dense array pays for every empty cell. The
// density sweep shows the crossover.
//
// Counters: molap_bytes, rolap_bytes, density.

#include <benchmark/benchmark.h>

#include "statcube/olap/molap_cube.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

// Density is controlled by the ratio of fact rows to cross-product cells.
RetailData MakeWithDensity(int rows) {
  RetailOptions opt;
  opt.num_products = 50;
  opt.num_stores = 10;
  opt.num_days = 60;  // 30k cells
  opt.num_rows = rows;
  opt.seed = 11;
  return *MakeRetailWorkload(opt);
}

void BM_MolapAggregate(benchmark::State& state) {
  RetailData data = MakeWithDensity(int(state.range(0)));
  auto cube = MolapCube::Build(data.object, "amount");
  int i = 0;
  for (auto _ : state) {
    double v = *cube->SumWhere(
        {{"product", Value("prod" + std::to_string(i % 50))}});
    benchmark::DoNotOptimize(v);
    ++i;
  }
  state.counters["density"] = cube->density();
  state.counters["molap_bytes"] = double(cube->ByteSize());
  state.counters["rolap_bytes"] = double(data.star.ByteSize());
}
BENCHMARK(BM_MolapAggregate)->Arg(1000)->Arg(10000)->Arg(60000);

void BM_RolapAggregate(benchmark::State& state) {
  RetailData data = MakeWithDensity(int(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    auto g = data.star.Aggregate({"product"},
                                 {{AggFn::kSum, "amount", "revenue"}},
                                 {});
    benchmark::DoNotOptimize(g->num_rows());
    ++i;
  }
  state.counters["rolap_bytes"] = double(data.star.ByteSize());
}
BENCHMARK(BM_RolapAggregate)->Arg(1000)->Arg(10000)->Arg(60000);

void BM_MolapGroupByCity(benchmark::State& state) {
  // A hierarchy-level aggregate: MOLAP answers per-store slabs then folds
  // stores into cities via the (small) dimension metadata.
  RetailData data = MakeWithDensity(20000);
  auto cube = MolapCube::Build(data.object, "amount");
  const Dimension* store_dim = *data.object.DimensionNamed("store");
  const auto& geo = store_dim->hierarchies()[0];
  for (auto _ : state) {
    double total = 0;
    for (const Value& city : geo.ValuesAt(1)) {
      double city_sum = 0;
      for (const Value& store : geo.Children(1, city))
        city_sum += *cube->SumWhere({{"store", store}});
      total += city_sum;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MolapGroupByCity);

void BM_RolapGroupByCity(benchmark::State& state) {
  // The ROLAP route: join fact to the store dimension table, group by city.
  RetailData data = MakeWithDensity(20000);
  for (auto _ : state) {
    auto g =
        data.star.Aggregate({"city"}, {{AggFn::kSum, "amount", "revenue"}});
    benchmark::DoNotOptimize(g->num_rows());
  }
}
BENCHMARK(BM_RolapGroupByCity);

void BM_CrossProductWaste(benchmark::State& state) {
  // F10: the flat relational table repeats category values per row; the
  // star schema normalizes them; MOLAP stores them once.
  RetailData data = MakeWithDensity(int(state.range(0)));
  auto cube = MolapCube::Build(data.object, "amount");
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.flat.ByteSize());
  }
  state.counters["flat_bytes"] = double(data.flat.ByteSize());
  state.counters["star_bytes"] = double(data.star.ByteSize());
  state.counters["molap_bytes"] = double(cube->ByteSize());
}
BENCHMARK(BM_CrossProductWaste)->Arg(10000)->Arg(60000);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
