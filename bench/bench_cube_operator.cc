// Experiment F15 (paper §5.4, Figure 15 — [GB+96] CUBE; §6.6 [ZDN97]
// simultaneous aggregation).
// Claims: the naive CUBE (2^n independent group-bys, one input scan each)
// is beaten by the simultaneous build (one scan + lattice state merging),
// and the array-based cube build beats both when the data is dense.
//
// Counters: groupings (2^n), input_scans.

#include <benchmark/benchmark.h>

#include "statcube/olap/cube_build.h"
#include "statcube/olap/molap_cube.h"
#include "statcube/relational/cube_operator.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

const RetailData& Data() {
  static RetailData data = [] {
    RetailOptions opt;
    opt.num_products = 20;
    opt.num_stores = 8;
    opt.num_cities = 4;
    opt.num_days = 30;
    opt.num_rows = 20000;
    return *MakeRetailWorkload(opt);
  }();
  return data;
}

std::vector<std::string> DimsFor(int n) {
  std::vector<std::string> all = {"product", "store", "day", "city",
                                  "category"};
  return std::vector<std::string>(all.begin(), all.begin() + n);
}

void BM_CubeNaive(benchmark::State& state) {
  int n = int(state.range(0));
  auto dims = DimsFor(n);
  (void)Data();  // construct the shared workload outside the timed region
  for (auto _ : state) {
    auto cube = CubeByNaive(Data().flat, dims, {{AggFn::kSum, "amount", "s"}});
    benchmark::DoNotOptimize(cube->num_rows());
  }
  state.counters["groupings"] = double(1 << n);
  state.counters["input_scans"] = double(1 << n);
}
BENCHMARK(BM_CubeNaive)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_CubeSimultaneous(benchmark::State& state) {
  int n = int(state.range(0));
  auto dims = DimsFor(n);
  (void)Data();
  for (auto _ : state) {
    auto cube = CubeBy(Data().flat, dims, {{AggFn::kSum, "amount", "s"}});
    benchmark::DoNotOptimize(cube->num_rows());
  }
  state.counters["groupings"] = double(1 << n);
  state.counters["input_scans"] = 1;
}
BENCHMARK(BM_CubeSimultaneous)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_ArrayCube(benchmark::State& state) {
  // The [ZDN97] array route: load once into a dense array, then collapse
  // through the lattice with pure arithmetic.
  auto cube = MolapCube::Build(Data().object, "amount");
  for (auto _ : state) {
    auto all = ArrayCubeAll(cube->array());
    benchmark::DoNotOptimize(all->size());
  }
  state.counters["groupings"] = double(1 << cube->num_dims());
  state.counters["cells_written"] =
      double(ArrayCubeCells(cube->array().shape()));
}
BENCHMARK(BM_ArrayCube);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
