// Experiment F23 (paper §6.4, Figure 23 — [SS94] subcube partitioning).
// Claim: a dice (range) query on a chunked cube reads only the overlapping
// subcubes, far fewer blocks than the row-major dense layout whose innermost
// segments scatter across the file; symmetric chunks are the right default
// without access-pattern knowledge.
//
// Counters: blocks (touched per query), chunks (overlapped).

#include <benchmark/benchmark.h>

#include "statcube/common/rng.h"
#include "statcube/molap/chunked_array.h"
#include "statcube/molap/dense_array.h"

namespace statcube {
namespace {

constexpr size_t kSide = 64;

void FillBoth(DenseArray* dense, ChunkedArray* chunked) {
  Rng rng(5);
  std::vector<size_t> c(3);
  for (c[0] = 0; c[0] < kSide; ++c[0])
    for (c[1] = 0; c[1] < kSide; ++c[1])
      for (c[2] = 0; c[2] < kSide; ++c[2]) {
        double v = double(rng.Uniform(100));
        (void)dense->Set(c, v);
        (void)chunked->Set(c, v);
      }
}

// A small dice: an 8^3 cube out of 64^3 (0.2% of the volume).
std::vector<DimRange> SmallDice(Rng* rng) {
  std::vector<DimRange> r(3);
  for (auto& d : r) {
    size_t lo = rng->Uniform(kSide - 8);
    d = {lo, lo + 8};
  }
  return r;
}

void BM_DenseDice(benchmark::State& state) {
  DenseArray dense({kSide, kSide, kSide});
  ChunkedArray chunked({kSide, kSide, kSide}, {8, 8, 8});
  FillBoth(&dense, &chunked);
  Rng rng(7);
  for (auto _ : state) {
    dense.counter().Reset();
    auto dice = SmallDice(&rng);
    double v = *dense.SumRange(dice);
    benchmark::DoNotOptimize(v);
  }
  state.counters["blocks"] = double(dense.counter().blocks_read());
}
BENCHMARK(BM_DenseDice);

void BM_ChunkedDice(benchmark::State& state) {
  DenseArray dense({kSide, kSide, kSide});
  ChunkedArray chunked({kSide, kSide, kSide}, {8, 8, 8});
  FillBoth(&dense, &chunked);
  Rng rng(7);
  uint64_t chunks = 0;
  for (auto _ : state) {
    chunked.counter().Reset();
    auto dice = SmallDice(&rng);
    chunks = *chunked.ChunksOverlapped(dice);
    double v = *chunked.SumRange(dice);
    benchmark::DoNotOptimize(v);
  }
  state.counters["blocks"] = double(chunked.counter().blocks_read());
  state.counters["chunks"] = double(chunks);
}
BENCHMARK(BM_ChunkedDice);

void BM_AdvisedVsSymmetricChunks(benchmark::State& state) {
  // §6.4's non-symmetric partitioning: queries are skewed 32x2x2 slabs;
  // arg 0 selects symmetric 8^3 chunks, arg 1 the advisor's query-shaped
  // chunks of the same volume.
  bool advised = state.range(0) == 1;
  std::vector<size_t> shape = {kSide, kSide, kSide};
  std::vector<size_t> qshape = {32, 2, 2};
  std::vector<size_t> cshape =
      advised ? AdviseChunkShape(shape, qshape, 512)
              : std::vector<size_t>{8, 8, 8};
  ChunkedArray chunked(shape, cshape);
  Rng fill(5);
  std::vector<size_t> c(3);
  for (c[0] = 0; c[0] < kSide; ++c[0])
    for (c[1] = 0; c[1] < kSide; ++c[1])
      for (c[2] = 0; c[2] < kSide; ++c[2])
        (void)chunked.Set(c, double(fill.Uniform(100)));
  Rng rng(7);
  for (auto _ : state) {
    chunked.counter().Reset();
    std::vector<DimRange> q(3);
    for (size_t i = 0; i < 3; ++i) {
      size_t lo = rng.Uniform(kSide - qshape[i]);
      q[i] = {lo, lo + qshape[i]};
    }
    double v = *chunked.SumRange(q);
    benchmark::DoNotOptimize(v);
  }
  state.counters["blocks"] = double(chunked.counter().blocks_read());
}
BENCHMARK(BM_AdvisedVsSymmetricChunks)->Arg(0)->Arg(1);

void BM_ChunkSizeSweep(benchmark::State& state) {
  // The one parameter of symmetric partitioning: the subcube side. Too
  // small -> many chunks touched; too large -> too much read per chunk.
  size_t side = size_t(state.range(0));
  ChunkedArray chunked({kSide, kSide, kSide}, {side, side, side});
  Rng fill(5);
  std::vector<size_t> c(3);
  for (c[0] = 0; c[0] < kSide; ++c[0])
    for (c[1] = 0; c[1] < kSide; ++c[1])
      for (c[2] = 0; c[2] < kSide; ++c[2])
        (void)chunked.Set(c, double(fill.Uniform(100)));
  Rng rng(7);
  for (auto _ : state) {
    chunked.counter().Reset();
    auto dice = SmallDice(&rng);
    double v = *chunked.SumRange(dice);
    benchmark::DoNotOptimize(v);
  }
  state.counters["blocks"] = double(chunked.counter().blocks_read());
}
BENCHMARK(BM_ChunkSizeSweep)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
