// Experiment F19 (paper §6.1, Figure 19 — [WL+85] bit-transposed files).
// Claims: (i) encoding few-valued category attributes into ceil(log2 k) bits
// cuts space "dramatically"; (ii) run-length encoding of slowly varying
// columns compounds the cut; (iii) predicate scans over bit planes beat
// value scans.
//
// Counters: store_bytes (layout footprint), compression_x (vs the row
// layout), bytes (read per query).

#include <benchmark/benchmark.h>

#include "statcube/storage/stores.h"
#include "statcube/workload/census.h"

namespace statcube {
namespace {

Table MakeMicro(int rows) { return *MakeCensusMicroData(rows, {}); }

void BM_PlainTransposedScan(benchmark::State& state) {
  Table t = MakeMicro(int(state.range(0)));
  TransposedStore store(t);
  RowFileStore row(t);
  std::vector<EqFilter> filters = {{"race", Value("race1")},
                                   {"sex", Value("M")}};
  for (auto _ : state) {
    store.counter().Reset();
    double sum = *store.SumWhere(filters, "income");
    benchmark::DoNotOptimize(sum);
  }
  state.counters["store_bytes"] = double(store.ByteSize());
  state.counters["compression_x"] =
      double(row.ByteSize()) / double(store.ByteSize());
  state.counters["bytes"] = double(store.counter().bytes_read());
}
BENCHMARK(BM_PlainTransposedScan)->Arg(100000);

void BM_BitTransposedScan(benchmark::State& state) {
  Table t = MakeMicro(int(state.range(0)));
  BitTransposedStore store(t, "income", {.enable_rle = false});
  RowFileStore row(t);
  std::vector<EqFilter> filters = {{"race", Value("race1")},
                                   {"sex", Value("M")}};
  for (auto _ : state) {
    store.counter().Reset();
    double sum = *store.SumWhere(filters, "income");
    benchmark::DoNotOptimize(sum);
  }
  state.counters["store_bytes"] = double(store.ByteSize());
  state.counters["compression_x"] =
      double(row.ByteSize()) / double(store.ByteSize());
  state.counters["bytes"] = double(store.counter().bytes_read());
}
BENCHMARK(BM_BitTransposedScan)->Arg(100000);

void BM_BitTransposedWithRle(benchmark::State& state) {
  // Sort-leading column: RLE shines (the paper's "least rapidly varying
  // columns" observation).
  Table t = MakeMicro(int(state.range(0)));
  (void)t.SortBy({"state", "county"});
  BitTransposedStore store(t, "income", {.enable_rle = true});
  RowFileStore row(t);
  std::vector<EqFilter> filters = {{"state", Value("st1")}};
  for (auto _ : state) {
    store.counter().Reset();
    double sum = *store.SumWhere(filters, "income");
    benchmark::DoNotOptimize(sum);
  }
  state.counters["store_bytes"] = double(store.ByteSize());
  state.counters["compression_x"] =
      double(row.ByteSize()) / double(store.ByteSize());
}
BENCHMARK(BM_BitTransposedWithRle)->Arg(100000);

void BM_BitPlanePredicate(benchmark::State& state) {
  // Pure predicate evaluation: word-parallel AND/NOT over bit planes.
  Table t = MakeMicro(100000);
  BitTransposedStore store(t, "income");
  for (auto _ : state) {
    auto bm = store.SelectBitmap("race", Value("race2"));
    benchmark::DoNotOptimize(bm->PopCount());
  }
}
BENCHMARK(BM_BitPlanePredicate);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
