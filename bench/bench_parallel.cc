// Experiments P1 and P4 (DESIGN.md §6, §12): thread-sweep scaling of the
// morsel-driven parallel kernels (statcube/exec) over the three §6
// aggregation shapes — hash group-by, the CUBE lattice, and the MOLAP
// marginals — plus the vectorized/radix variants of the group-by shapes.
// Arg(N) is the worker count (1/2/4/8); the 1-thread row is the serial
// baseline cost, so speedup(N) = real_time(1) / real_time(N). On a machine
// with fewer cores than N the pool oversubscribes (EnsureThreads), which
// bounds but does not fake the scaling curve — record the core count with
// the numbers.
//
// Determinism of the measured WORK: the dataset seed is pinned (seed 17,
// 200k rows) so every run — and both sides of a tools/bench_diff.py
// comparison — aggregates the exact same rows; a drifting dataset would
// make cross-commit real_time deltas meaningless. The scalar cases also pin
// ExecOptions::vectorized = false explicitly, so BM_ParallelGroupBy means
// the same thing whether or not STATCUBE_VECTORIZED is set in the
// environment; the BM_Vectorized* cases are the flag-on measurement over
// the identical table (speedup = BM_Parallel* / BM_Vectorized* at equal N).
//
// Counters: threads, rows (or cells) processed per iteration.

#include <benchmark/benchmark.h>

#include "statcube/exec/parallel_kernels.h"
#include "statcube/molap/dense_array.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

// One big retail table shared by every group-by/CUBE case: ~200k fact rows
// over 50 products x 12 stores x 60 days, Zipf-skewed. The seed is pinned
// so scalar and vectorized cases — and baseline vs candidate commits —
// measure identical work (see the file comment).
const Table& BigRetailFlat() {
  static const Table* table = [] {
    RetailOptions opt;
    opt.num_rows = 200000;
    opt.seed = 17;  // pinned: never change without regenerating baselines
    return new Table(MakeRetailWorkload(opt)->flat);
  }();
  return *table;
}

exec::ExecOptions Workers(int64_t n) {
  exec::ExecOptions o;
  o.threads = int(n);
  o.vectorized = false;  // pinned scalar, immune to STATCUBE_VECTORIZED
  return o;
}

exec::ExecOptions VecWorkers(int64_t n) {
  exec::ExecOptions o = Workers(n);
  o.vectorized = true;
  return o;
}

void BM_ParallelGroupBy(benchmark::State& state) {
  const Table& t = BigRetailFlat();
  std::vector<AggSpec> aggs = {{AggFn::kSum, "amount", ""},
                               {AggFn::kCount, "qty", ""}};
  for (auto _ : state) {
    auto g = exec::ParallelGroupBy(t, {"product", "store"}, aggs,
                                   Workers(state.range(0)));
    benchmark::DoNotOptimize(g->num_rows());
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["rows"] = double(t.num_rows());
}
BENCHMARK(BM_ParallelGroupBy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelCubeBy(benchmark::State& state) {
  const Table& t = BigRetailFlat();
  std::vector<AggSpec> aggs = {{AggFn::kSum, "amount", ""}};
  for (auto _ : state) {
    auto c = exec::ParallelCubeBy(t, {"category", "city", "month"}, aggs,
                                  Workers(state.range(0)));
    benchmark::DoNotOptimize(c->num_rows());
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["rows"] = double(t.num_rows());
}
BENCHMARK(BM_ParallelCubeBy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_VectorizedGroupBy(benchmark::State& state) {
  // The same table, group columns, and aggregates as BM_ParallelGroupBy,
  // answered by the radix kernels (exec/vec_kernels.h). Output is
  // bit-identical; only the time may differ.
  const Table& t = BigRetailFlat();
  std::vector<AggSpec> aggs = {{AggFn::kSum, "amount", ""},
                               {AggFn::kCount, "qty", ""}};
  for (auto _ : state) {
    auto g = exec::ParallelGroupBy(t, {"product", "store"}, aggs,
                                   VecWorkers(state.range(0)));
    benchmark::DoNotOptimize(g->num_rows());
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["rows"] = double(t.num_rows());
}
BENCHMARK(BM_VectorizedGroupBy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_VectorizedCubeBy(benchmark::State& state) {
  const Table& t = BigRetailFlat();
  std::vector<AggSpec> aggs = {{AggFn::kSum, "amount", ""}};
  for (auto _ : state) {
    auto c = exec::ParallelCubeBy(t, {"category", "city", "month"}, aggs,
                                  VecWorkers(state.range(0)));
    benchmark::DoNotOptimize(c->num_rows());
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["rows"] = double(t.num_rows());
}
BENCHMARK(BM_VectorizedCubeBy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelMarginals(benchmark::State& state) {
  // A dense 64^3 cube (2M cells): the Figure 9 row/column totals, one slab
  // reduction per marginal entry.
  static DenseArray* array = [] {
    auto* a = new DenseArray({64, 64, 64});
    for (size_t i = 0; i < a->num_cells(); ++i)
      a->SetLinear(i, double(i % 251));
    return a;
  }();
  for (auto _ : state) {
    auto m = exec::ParallelMarginalSums(*array, 1, Workers(state.range(0)));
    benchmark::DoNotOptimize(m->size());
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["cells"] = double(array->num_cells());
}
BENCHMARK(BM_ParallelMarginals)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
