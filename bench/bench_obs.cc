// Observability overhead: the v2 instrumentation contract is that a query
// with observability DISABLED pays only relaxed atomic loads and branches
// at every instrumentation site (<3% vs an uninstrumented build), while
// ENABLED adds span recording, per-worker resource attribution, and metric
// counters. Adjacent disabled/enabled pairs make the cost visible; the
// sampler benchmarks price one /statusz tick and one sparkline render.
//
// Counters: none; compare wall times of adjacent benchmarks.

#include <benchmark/benchmark.h>

#include <atomic>

#include "statcube/common/cancellation.h"
#include "statcube/exec/task_scheduler.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_profile.h"
#include "statcube/obs/query_registry.h"
#include "statcube/obs/timeseries_ring.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

const StatisticalObject& Sales() {
  static StatisticalObject obj = [] {
    RetailOptions opt;
    opt.num_products = 30;
    opt.num_stores = 8;
    opt.num_days = 30;
    opt.num_rows = 20000;
    return MakeRetailWorkload(opt)->object;
  }();
  return obj;
}

// ------------------------------------ query path, instrumentation off/on

void BM_QueryObsDisabled(benchmark::State& state) {
  (void)Sales();
  obs::EnabledScope off(false);
  for (auto _ : state) {
    auto r = Query(Sales(), "SELECT sum(amount) BY store");
    benchmark::DoNotOptimize(r->num_rows());
  }
}
BENCHMARK(BM_QueryObsDisabled);

void BM_QueryObsEnabled(benchmark::State& state) {
  (void)Sales();
  obs::EnabledScope on(true);
  for (auto _ : state) {
    QueryOptions opt;
    opt.record = false;  // price the instrumentation, not the recorder copy
    auto r = QueryProfiled(Sales(), "SELECT sum(amount) BY store", opt);
    benchmark::DoNotOptimize(r->table.num_rows());
  }
}
BENCHMARK(BM_QueryObsEnabled);

// ------------------------- parallel fan-out, instrumentation off/on

void RunFanout(exec::TaskScheduler& pool) {
  exec::ParallelForOptions opt;
  opt.scheduler = &pool;
  opt.morsel_size = 256;
  opt.max_workers = 4;
  std::atomic<uint64_t> sum{0};
  exec::ParallelFor(
      16384,
      [&sum](size_t, size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      },
      opt);
  benchmark::DoNotOptimize(sum.load());
}

void BM_ParallelForObsDisabled(benchmark::State& state) {
  obs::EnabledScope off(false);
  exec::TaskScheduler pool(4);
  for (auto _ : state) RunFanout(pool);
}
BENCHMARK(BM_ParallelForObsDisabled);

void BM_ParallelForObsEnabledTraced(benchmark::State& state) {
  obs::EnabledScope on(true);
  exec::TaskScheduler pool(4);
  for (auto _ : state) {
    obs::ProfileScope scope;  // full context: trace + resource accumulator
    RunFanout(pool);
    benchmark::DoNotOptimize(scope.Take().resources.cpu_us);
  }
}
BENCHMARK(BM_ParallelForObsEnabledTraced);

// -------------------- cancellation checks, disarmed vs armed (PR 7 bar)

// Same fan-out with no stop context (the default every pre-existing caller
// gets: one null test per morsel) vs an armed-but-never-fired context (one
// relaxed token load + deadline compare per morsel). Adjacent pairs keep
// the <3% disabled-path bar measurable.
void RunFanoutWithStop(exec::TaskScheduler& pool, const CancelContext* stop) {
  exec::ParallelForOptions opt;
  opt.scheduler = &pool;
  opt.morsel_size = 256;
  opt.max_workers = 4;
  opt.stop = stop;
  std::atomic<uint64_t> sum{0};
  exec::ParallelFor(
      16384,
      [&sum](size_t, size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      },
      opt);
  benchmark::DoNotOptimize(sum.load());
}

void BM_ParallelForCancelDisabled(benchmark::State& state) {
  obs::EnabledScope off(false);
  exec::TaskScheduler pool(4);
  for (auto _ : state) RunFanoutWithStop(pool, nullptr);
}
BENCHMARK(BM_ParallelForCancelDisabled);

void BM_ParallelForCancelArmed(benchmark::State& state) {
  obs::EnabledScope off(false);
  exec::TaskScheduler pool(4);
  CancellationToken token;
  CancelContext stop;
  stop.token = &token;
  stop.deadline_us = SteadyNowUs() + 3600ull * 1000 * 1000;  // never fires
  for (auto _ : state) RunFanoutWithStop(pool, &stop);
}
BENCHMARK(BM_ParallelForCancelArmed);

// The per-query registry rendezvous QueryProfiled added: one Register +
// one Unregister (two map ops under an uncontended mutex) per query.
void BM_QueryRegistryEnterExit(benchmark::State& state) {
  CancellationToken token;
  for (auto _ : state) {
    obs::ActiveQueryInfo info;
    info.query = "SELECT sum(amount) BY store";
    info.engine = "relational";
    info.cache_mode = "off";
    info.threads = 4;
    info.token = token;
    obs::ActiveQueryScope scope(std::move(info));
    benchmark::DoNotOptimize(scope.id());
  }
}
BENCHMARK(BM_QueryRegistryEnterExit);

// ----------------------------------------------- /statusz sampling costs

void BM_SamplerTick(benchmark::State& state) {
  obs::MetricSamplerOptions opt;
  opt.ring_capacity = 120;
  opt.percentile_window = 30;
  obs::MetricSampler sampler(opt);
  sampler.AddDefaultStatuszSeries();
  obs::Histogram& lat =
      obs::MetricsRegistry::Global().GetHistogram("statcube.query.latency_us");
  for (auto _ : state) {
    lat.Observe(1234.0);  // keep the window non-degenerate
    sampler.SampleOnce();
  }
}
BENCHMARK(BM_SamplerTick);

void BM_RingPush(benchmark::State& state) {
  obs::TimeSeriesRing ring(120);
  double v = 0;
  for (auto _ : state) ring.Push(v += 1.0);
  benchmark::DoNotOptimize(ring.Last());
}
BENCHMARK(BM_RingPush);

void BM_RingSnapshot(benchmark::State& state) {
  obs::TimeSeriesRing ring(120);
  for (int i = 0; i < 240; ++i) ring.Push(double(i));
  for (auto _ : state) {
    auto snap = ring.Snapshot();
    benchmark::DoNotOptimize(snap.data());
  }
}
BENCHMARK(BM_RingSnapshot);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
