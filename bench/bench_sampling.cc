// Experiment C3 (paper §5.6 — [OR95] sampling). Claim: "it is very
// inefficient to extract large collections of data from the database system,
// only to sample the collection outside the system" — in-engine sampling
// touches O(sample) or one streaming pass; extract-then-sample materializes
// everything first. Rank-based B+-tree sampling doesn't even scan.
//
// Counters: rows_materialized.

#include <benchmark/benchmark.h>

#include "statcube/sampling/sampling.h"
#include "statcube/workload/census.h"

namespace statcube {
namespace {

const Table& Micro() {
  static Table t = *MakeCensusMicroData(200000, {});
  return t;
}

void BM_ExtractThenSample(benchmark::State& state) {
  // The statistical-package route: copy the whole relation out of the
  // "engine", then sample the extract.
  const Table& t = Micro();
  for (auto _ : state) {
    Table extracted(t.name(), t.schema());
    for (const Row& r : t.rows()) extracted.AppendRowUnchecked(r);
    Table sample = ReservoirSample(extracted, 1000, 3);
    benchmark::DoNotOptimize(sample.num_rows());
  }
  state.counters["rows_materialized"] = double(Micro().num_rows() + 1000);
}
BENCHMARK(BM_ExtractThenSample);

void BM_InEngineReservoir(benchmark::State& state) {
  // One streaming pass, only the reservoir materialized.
  const Table& t = Micro();
  for (auto _ : state) {
    Table sample = ReservoirSample(t, 1000, 3);
    benchmark::DoNotOptimize(sample.num_rows());
  }
  state.counters["rows_materialized"] = 1000.0;
}
BENCHMARK(BM_InEngineReservoir);

void BM_InEngineBernoulli(benchmark::State& state) {
  const Table& t = Micro();
  for (auto _ : state) {
    auto sample = BernoulliSample(t, 0.005, 3);
    benchmark::DoNotOptimize(sample->num_rows());
  }
}
BENCHMARK(BM_InEngineBernoulli);

void BM_BTreeRankSample(benchmark::State& state) {
  // Index-assisted: O(k log n) rank selections, no scan at all.
  static BPlusTree<uint64_t, uint64_t>* tree = [] {
    auto* t = new BPlusTree<uint64_t, uint64_t>();
    for (uint64_t i = 0; i < 200000; ++i) t->Insert(i * 2654435761u, i);
    return t;
  }();
  uint64_t seed = 1;
  for (auto _ : state) {
    auto sample = BTreeSample(*tree, 1000, seed++);
    benchmark::DoNotOptimize(sample.size());
  }
  state.counters["rows_materialized"] = 1000.0;
}
BENCHMARK(BM_BTreeRankSample);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
