// Query-language overhead (§5.1): the paper argues explicit statistical
// semantics permit concise query languages; this bench shows the text layer
// costs only parsing — execution is dominated by the same group-by the
// hand-built pipeline runs — and that hierarchy-level inference pays one
// derivation pass.
//
// Counters: none; compare wall times of adjacent benchmarks.

#include <benchmark/benchmark.h>

#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

const StatisticalObject& Sales() {
  static StatisticalObject obj = [] {
    RetailOptions opt;
    opt.num_products = 30;
    opt.num_stores = 8;
    opt.num_days = 30;
    opt.num_rows = 20000;
    return MakeRetailWorkload(opt)->object;
  }();
  return obj;
}

void BM_ParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto q = ParseQuery(
        "SELECT sum(amount), avg(qty) BY city WHERE product = 'prod1'");
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_ParseOnly);

void BM_TextQueryByDimension(benchmark::State& state) {
  (void)Sales();
  for (auto _ : state) {
    auto r = Query(Sales(), "SELECT sum(amount) BY store");
    benchmark::DoNotOptimize(r->num_rows());
  }
}
BENCHMARK(BM_TextQueryByDimension);

void BM_HandBuiltGroupBy(benchmark::State& state) {
  (void)Sales();
  for (auto _ : state) {
    auto r = GroupBy(Sales().data(), {"store"},
                     {{AggFn::kSum, "amount", "sum_amount"}});
    benchmark::DoNotOptimize(r->num_rows());
  }
}
BENCHMARK(BM_HandBuiltGroupBy);

void BM_TextQueryWithHierarchyInference(benchmark::State& state) {
  // "city" is a hierarchy level: the executor derives it per row first.
  (void)Sales();
  for (auto _ : state) {
    auto r = Query(Sales(), "SELECT sum(amount) BY city");
    benchmark::DoNotOptimize(r->num_rows());
  }
}
BENCHMARK(BM_TextQueryWithHierarchyInference);

void BM_TextQueryCube(benchmark::State& state) {
  (void)Sales();
  for (auto _ : state) {
    auto r = Query(Sales(), "SELECT sum(amount) BY CUBE(city, month)");
    benchmark::DoNotOptimize(r->num_rows());
  }
}
BENCHMARK(BM_TextQueryCube);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
