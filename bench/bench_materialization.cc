// Experiment F22 (paper §6.3, Figure 22 — [HUR96] view materialization).
// Claims: with all 2^n summarization queries equally likely, greedy view
// selection cuts total query cost sharply for little space, approaches the
// exhaustive optimum, and the materialized store actually scans that many
// fewer rows.
//
// Counters: benefit_pct (% of top-only cost eliminated), space_rows,
// rows_scanned (per answered query).

#include <benchmark/benchmark.h>

#include "statcube/materialize/greedy.h"
#include "statcube/materialize/lattice.h"
#include "statcube/materialize/view_store.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

const RetailData& Data() {
  static RetailData data = [] {
    RetailOptions opt;
    opt.num_products = 60;
    opt.num_stores = 15;
    opt.num_days = 90;
    opt.num_rows = 40000;
    return *MakeRetailWorkload(opt);
  }();
  return data;
}

const Lattice& RetailLattice() {
  static Lattice l = *Lattice::FromTable(
      Data().flat, {"product", "category", "store", "city", "day"});
  return l;
}

void BM_GreedySelect(benchmark::State& state) {
  size_t k = size_t(state.range(0));
  const Lattice& l = RetailLattice();
  ViewSelection sel;
  for (auto _ : state) {
    sel = GreedySelect(l, k);
    benchmark::DoNotOptimize(sel.benefit);
  }
  state.counters["benefit_pct"] =
      100.0 * double(sel.benefit) / double(l.TotalCost({}));
  state.counters["space_rows"] = double(sel.space_rows);
  state.counters["avg_query_rows"] =
      double(sel.total_cost) / double(l.num_views());
}
BENCHMARK(BM_GreedySelect)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_GreedyVsOptimal(benchmark::State& state) {
  // Small lattice where the exhaustive optimum is feasible.
  auto small = Lattice::FromTable(Data().flat, {"category", "city", "month"});
  size_t k = size_t(state.range(0));
  uint64_t greedy_benefit = 0, optimal_benefit = 0;
  for (auto _ : state) {
    greedy_benefit = GreedySelect(*small, k).benefit;
    optimal_benefit = OptimalSelect(*small, k)->benefit;
    benchmark::DoNotOptimize(greedy_benefit);
  }
  state.counters["greedy_over_optimal"] =
      optimal_benefit == 0
          ? 1.0
          : double(greedy_benefit) / double(optimal_benefit);
}
BENCHMARK(BM_GreedyVsOptimal)->Arg(1)->Arg(2)->Arg(3);

void BM_QueryWithoutViews(benchmark::State& state) {
  auto store = MaterializedCubeStore::Create(
      Data().flat, {"product", "store", "day"},
      {{AggFn::kSum, "amount", "revenue"}});
  for (auto _ : state) {
    auto q = store->Query(0b001);  // by product
    benchmark::DoNotOptimize(q->num_rows());
  }
  state.counters["rows_scanned"] = double(store->last_rows_scanned());
}
BENCHMARK(BM_QueryWithoutViews);

void BM_IncrementalRefresh(benchmark::State& state) {
  // §6.5 daily appends meet §6.3 views: fold a 500-row delta into two
  // materialized views vs recomputing them from the 40k base.
  auto store = MaterializedCubeStore::Create(
                   Data().flat, {"product", "store", "day"},
                   {{AggFn::kSum, "amount", "revenue"}})
                   .ValueOrDie();
  (void)store.Materialize(0b001);
  (void)store.Materialize(0b011);
  std::vector<Row> delta(Data().flat.rows().begin(),
                         Data().flat.rows().begin() + 500);
  for (auto _ : state) {
    auto n = store.AppendAndRefresh(delta);
    benchmark::DoNotOptimize(*n);
  }
  state.counters["rows_reaggregated"] = 1000;  // 2 views x 500 rows
}
BENCHMARK(BM_IncrementalRefresh);

void BM_FullRecomputeRefresh(benchmark::State& state) {
  Table base = Data().flat;
  for (auto _ : state) {
    // Recompute both views from scratch over the whole base.
    auto v1 = GroupBy(base, {"product"}, {{AggFn::kSum, "amount", "revenue"}});
    auto v2 = GroupBy(base, {"product", "store"},
                      {{AggFn::kSum, "amount", "revenue"}});
    benchmark::DoNotOptimize(v1->num_rows() + v2->num_rows());
  }
  state.counters["rows_reaggregated"] = double(2 * Data().flat.num_rows());
}
BENCHMARK(BM_FullRecomputeRefresh);

void BM_QueryWithGreedyViews(benchmark::State& state) {
  auto store = MaterializedCubeStore::Create(
      Data().flat, {"product", "store", "day"},
      {{AggFn::kSum, "amount", "revenue"}});
  auto lattice = Lattice::FromTable(Data().flat, {"product", "store", "day"});
  ViewSelection sel = GreedySelect(*lattice, 3);
  for (uint32_t v : sel.views) (void)store->Materialize(v);
  for (auto _ : state) {
    auto q = store->Query(0b001);
    benchmark::DoNotOptimize(q->num_rows());
  }
  state.counters["rows_scanned"] = double(store->last_rows_scanned());
}
BENCHMARK(BM_QueryWithGreedyViews);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
