// Experiment F18 (paper §6.1, Figure 18 — [THC79] transposed files).
// Claim: summary queries over a few columns read far fewer blocks from a
// transposed (column) file than from a row file; the penalty is whole-row
// retrieval, which touches every column file.
//
// Counters: blocks = logical blocks touched per op (the paper's currency).

#include <benchmark/benchmark.h>

#include "statcube/storage/stores.h"
#include "statcube/workload/census.h"

namespace statcube {
namespace {

Table MakeMicro(int rows) {
  auto t = MakeCensusMicroData(rows, {});
  return *std::move(t);
}

void BM_RowFileSummaryScan(benchmark::State& state) {
  Table t = MakeMicro(int(state.range(0)));
  RowFileStore store(t);
  std::vector<EqFilter> filters = {{"sex", Value("F")}};
  double sum = 0;
  for (auto _ : state) {
    store.counter().Reset();
    sum = *store.SumWhere(filters, "income");
    benchmark::DoNotOptimize(sum);
  }
  state.counters["blocks"] = double(store.counter().blocks_read());
  state.counters["bytes"] = double(store.counter().bytes_read());
}
BENCHMARK(BM_RowFileSummaryScan)->Arg(10000)->Arg(100000);

void BM_TransposedSummaryScan(benchmark::State& state) {
  Table t = MakeMicro(int(state.range(0)));
  TransposedStore store(t);
  std::vector<EqFilter> filters = {{"sex", Value("F")}};
  double sum = 0;
  for (auto _ : state) {
    store.counter().Reset();
    sum = *store.SumWhere(filters, "income");
    benchmark::DoNotOptimize(sum);
  }
  state.counters["blocks"] = double(store.counter().blocks_read());
  state.counters["bytes"] = double(store.counter().bytes_read());
}
BENCHMARK(BM_TransposedSummaryScan)->Arg(10000)->Arg(100000);

void BM_RowFileRowFetch(benchmark::State& state) {
  Table t = MakeMicro(100000);
  RowFileStore store(t);
  size_t i = 0;
  for (auto _ : state) {
    store.counter().Reset();
    auto row = store.GetRow(i);
    benchmark::DoNotOptimize(row);
    i = (i + 7919) % 100000;
  }
  state.counters["blocks_per_row"] = double(store.counter().blocks_read());
}
BENCHMARK(BM_RowFileRowFetch);

void BM_TransposedRowFetch(benchmark::State& state) {
  Table t = MakeMicro(100000);
  TransposedStore store(t);
  size_t i = 0;
  for (auto _ : state) {
    store.counter().Reset();
    auto row = store.GetRow(i);
    benchmark::DoNotOptimize(row);
    i = (i + 7919) % 100000;
  }
  // The transposed-file penalty: one block per column file.
  state.counters["blocks_per_row"] = double(store.counter().blocks_read());
}
BENCHMARK(BM_TransposedRowFetch);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
