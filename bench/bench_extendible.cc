// Experiment F24 (paper §6.5, Figure 24 — [RZ86] extendible arrays).
// Claim: appending to a data cube (e.g. daily appends to a warehouse)
// should not relinearize the cube; the extendible array writes only the new
// slab, while a plain linearized array must be rebuilt, rewriting every
// cell. Range queries over the segmented layout remain efficient.
//
// Counters: bytes_written per append.

#include <benchmark/benchmark.h>

#include "statcube/common/rng.h"
#include "statcube/molap/dense_array.h"
#include "statcube/molap/extendible_array.h"

namespace statcube {
namespace {

void BM_ExtendibleDailyAppend(benchmark::State& state) {
  size_t side = size_t(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ExtendibleArray a({side, side, 30});  // product x store x day
    a.counter().Reset();
    state.ResumeTiming();
    for (int day = 0; day < 30; ++day) (void)a.Expand(2, 1);
    benchmark::DoNotOptimize(a.num_segments());
    state.counters["bytes_written"] = double(a.counter().bytes_read());
  }
}
BENCHMARK(BM_ExtendibleDailyAppend)->Arg(32)->Arg(64)->Arg(128);

void BM_DenseRebuildAppend(benchmark::State& state) {
  // The baseline: growing a row-major array along a non-innermost dimension
  // relocates cells, so each append rebuilds the array.
  size_t side = size_t(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    DenseArray a({side, side, 30});
    uint64_t bytes_written = 0;
    state.ResumeTiming();
    for (int day = 0; day < 30; ++day) {
      std::vector<size_t> shape = a.shape();
      shape[2] += 1;
      DenseArray bigger(shape);
      // Copy every existing cell into its new position.
      for (size_t pos = 0; pos < a.num_cells(); ++pos) {
        auto coord = a.Delinearize(pos);
        bigger.SetLinear(*bigger.Linearize(coord), a.GetLinear(pos));
      }
      bytes_written += bigger.num_cells() * sizeof(double);
      a = std::move(bigger);
    }
    benchmark::DoNotOptimize(a.num_cells());
    state.counters["bytes_written"] = double(bytes_written);
  }
}
BENCHMARK(BM_DenseRebuildAppend)->Arg(32)->Arg(64);

void BM_ExtendibleRangeQueryAfterGrowth(benchmark::State& state) {
  // Queries stay fast despite the segmented layout.
  ExtendibleArray a({64, 64, 30});
  Rng rng(9);
  for (int day = 0; day < 60; ++day) (void)a.Expand(2, 1);
  std::vector<size_t> c(3);
  for (int i = 0; i < 20000; ++i) {
    c = {rng.Uniform(64), rng.Uniform(64), rng.Uniform(90)};
    (void)a.Set(c, double(rng.Uniform(100)));
  }
  for (auto _ : state) {
    double v = *a.SumRange({{10, 30}, {10, 30}, {50, 80}});
    benchmark::DoNotOptimize(v);
  }
  state.counters["segments"] = double(a.num_segments());
}
BENCHMARK(BM_ExtendibleRangeQueryAfterGrowth);

void BM_DenseRangeQueryBaseline(benchmark::State& state) {
  DenseArray a({64, 64, 90});
  Rng rng(9);
  std::vector<size_t> c(3);
  for (int i = 0; i < 20000; ++i) {
    c = {rng.Uniform(64), rng.Uniform(64), rng.Uniform(90)};
    (void)a.Set(c, double(rng.Uniform(100)));
  }
  for (auto _ : state) {
    double v = *a.SumRange({{10, 30}, {10, 30}, {50, 80}});
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_DenseRangeQueryBaseline);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
