// Experiment F20 (paper §6.2, Figure 20 — array linearization / MOLAP).
// Claim: a dense linearized array stores only cells (dimension values once),
// and cell addressing is O(1) arithmetic — versus the relational layout
// which repeats every category value per row and must search.
//
// Counters: store_bytes, space_vs_rolap (array bytes / relational bytes —
// < 1 when dense).

#include <benchmark/benchmark.h>

#include "statcube/olap/molap_cube.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

const RetailData& Data() {
  static RetailData data = [] {
    RetailOptions opt;
    opt.num_products = 40;
    opt.num_stores = 10;
    opt.num_days = 60;
    opt.num_rows = 30000;  // dense-ish: 24k cells, 30k rows
    return *MakeRetailWorkload(opt);
  }();
  return data;
}

void BM_MolapPointLookup(benchmark::State& state) {
  auto cube = MolapCube::Build(Data().object, "amount");
  std::vector<Value> coord = {Value("prod3"), Value("city1/s#1"),
                              Value("1996-1-5")};
  for (auto _ : state) {
    double v = *cube->GetCell(coord);
    benchmark::DoNotOptimize(v);
  }
  state.counters["store_bytes"] = double(cube->ByteSize());
  state.counters["space_vs_rolap"] =
      double(cube->ByteSize()) / double(Data().flat.ByteSize());
  state.counters["density"] = cube->density();
}
BENCHMARK(BM_MolapPointLookup);

void BM_RolapPointLookup(benchmark::State& state) {
  // The relational route: scan the flat table for the matching row(s).
  const Table& flat = Data().flat;
  size_t pi = *flat.schema().IndexOf("product");
  size_t si = *flat.schema().IndexOf("store");
  size_t di = *flat.schema().IndexOf("day");
  size_t ai = *flat.schema().IndexOf("amount");
  Value p("prod3"), s("city1/s#1"), d("1996-1-5");
  for (auto _ : state) {
    double v = 0;
    for (const Row& r : flat.rows())
      if (r[pi] == p && r[si] == s && r[di] == d) v += r[ai].AsDouble();
    benchmark::DoNotOptimize(v);
  }
  state.counters["store_bytes"] = double(flat.ByteSize());
}
BENCHMARK(BM_RolapPointLookup);

void BM_MolapSlabSum(benchmark::State& state) {
  auto cube = MolapCube::Build(Data().object, "amount");
  for (auto _ : state) {
    double v = *cube->SumWhere({{"product", Value("prod3")}});
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_MolapSlabSum);

void BM_RolapSlabSum(benchmark::State& state) {
  const Table& flat = Data().flat;
  size_t pi = *flat.schema().IndexOf("product");
  size_t ai = *flat.schema().IndexOf("amount");
  Value p("prod3");
  for (auto _ : state) {
    double v = 0;
    for (const Row& r : flat.rows())
      if (r[pi] == p) v += r[ai].AsDouble();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_RolapSlabSum);

void BM_LinearizeDelinearizeRoundTrip(benchmark::State& state) {
  DenseArray a({50, 40, 30});
  size_t pos = 0;
  for (auto _ : state) {
    auto coord = a.Delinearize(pos);
    pos = (*a.Linearize(coord) + 104729) % a.num_cells();
    benchmark::DoNotOptimize(pos);
  }
}
BENCHMARK(BM_LinearizeDelinearizeRoundTrip);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
