// Experiment P2 (DESIGN.md §7): what the result cache buys on the hot query
// path. Four costs on the same 200k-row retail object:
//
//   ColdExecute  — the backend price a miss pays (cache off),
//   KeyBuild     — the fixed per-query overhead the cache adds (normalize +
//                  fingerprint; paid on every cached query, hit or miss),
//   WarmHit      — exact-key reuse,
//   DerivedHit   — lattice roll-up from a cached superset grouping
//                  (BY product, store answered from cache, regrouped BY
//                  store), per thread count,
//
// plus WorkloadReplayWarm: the stats_server query mix (§ examples/) replayed
// against a warm cache in derive mode — the end-to-end speedup the
// EXPERIMENTS.md P2 recipe measures from /metrics. Counter hit_rate is
// (hits + derived_hits) / (hits + misses) over the run.

#include <benchmark/benchmark.h>

#include "statcube/query/cache_key.h"
#include "statcube/cache/result_cache.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

// Same scale as bench_parallel's BigRetailFlat so the cold numbers are
// comparable across benches.
const StatisticalObject& BigRetail() {
  static const StatisticalObject* obj = [] {
    RetailOptions opt;
    opt.num_rows = 200000;
    opt.seed = 17;
    return new StatisticalObject(MakeRetailWorkload(opt)->object);
  }();
  return *obj;
}

QueryOptions Opts(cache::Mode mode, int threads = 1) {
  QueryOptions o;
  o.cache = mode;
  o.threads = threads;
  o.record = false;  // keep the flight recorder out of the timings
  return o;
}

constexpr const char* kQuery = "SELECT sum(amount) BY store";
constexpr const char* kSuperset = "SELECT sum(amount) BY product, store";

// The backend price every miss pays: full relational execution, cache off.
void BM_ColdExecute(benchmark::State& state) {
  const auto& obj = BigRetail();
  for (auto _ : state) {
    auto r = QueryProfiled(obj, kQuery, Opts(cache::Mode::kOff));
    benchmark::DoNotOptimize(r->table.num_rows());
  }
  state.counters["rows"] = double(obj.data().num_rows());
}
BENCHMARK(BM_ColdExecute)->Unit(benchmark::kMicrosecond);

// Fixed overhead the cache adds to every query: canonical key construction
// (dataset fingerprint + normalized group-by/WHERE).
void BM_KeyBuild(benchmark::State& state) {
  const auto& obj = BigRetail();
  auto parsed = ParseQuery(kQuery);
  for (auto _ : state) {
    auto key =
        query::BuildQueryKey(obj, *parsed, QueryEngine::kRelational);
    benchmark::DoNotOptimize(key->exact.size());
  }
}
BENCHMARK(BM_KeyBuild)->Unit(benchmark::kMicrosecond);

// Exact-key reuse: one cold query seeds the cache, every iteration hits.
void BM_WarmHit(benchmark::State& state) {
  const auto& obj = BigRetail();
  auto& rc = cache::ResultCache::Global();
  rc.set_admit_min_us(0);
  rc.Clear();
  (void)QueryProfiled(obj, kQuery, Opts(cache::Mode::kOn));  // seed
  for (auto _ : state) {
    auto r = QueryProfiled(obj, kQuery, Opts(cache::Mode::kOn));
    benchmark::DoNotOptimize(r->table.num_rows());
  }
}
BENCHMARK(BM_WarmHit)->Unit(benchmark::kMicrosecond);

// Lattice roll-up: only the superset grouping is cached; every iteration
// regroups its 600 rows instead of scanning 200k. Arg(N) = rollup threads.
void BM_DerivedHit(benchmark::State& state) {
  const auto& obj = BigRetail();
  auto& rc = cache::ResultCache::Global();
  rc.set_admit_min_us(0);
  rc.Clear();
  (void)QueryProfiled(obj, kSuperset, Opts(cache::Mode::kDerive));  // seed
  // Keep the derived result OUT of the cache (it would turn iteration 2
  // into an exact hit): raise the admission bar so only the seeded superset
  // stays resident and every iteration re-derives.
  rc.set_admit_min_us(uint64_t(1) << 60);
  const int threads = int(state.range(0));
  for (auto _ : state) {
    auto r = QueryProfiled(obj, kQuery, Opts(cache::Mode::kDerive, threads));
    benchmark::DoNotOptimize(r->table.num_rows());
  }
  rc.set_admit_min_us(0);
  state.counters["threads"] = double(threads);
}
BENCHMARK(BM_DerivedHit)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

// End-to-end: the stats_server replay mix against a warm derive-mode cache.
// One priming round, then each iteration replays the whole mix.
void BM_WorkloadReplayWarm(benchmark::State& state) {
  const auto& obj = BigRetail();
  struct Q {
    const char* text;
    QueryEngine engine;
  };
  const Q mix[] = {
      {"SELECT sum(amount) BY store", QueryEngine::kMolap},
      {"SELECT sum(amount) BY store", QueryEngine::kRolap},
      {"SELECT sum(amount) BY city", QueryEngine::kRelational},
      {"SELECT sum(qty), avg(amount) BY category", QueryEngine::kRelational},
      {"SELECT sum(amount) BY month WHERE city = 'city1'",
       QueryEngine::kRelational},
      {"SELECT sum(amount) BY CUBE(city, month)", QueryEngine::kRelational},
      {"SELECT count() WHERE price_range = 'premium'",
       QueryEngine::kRelational},
  };
  auto& rc = cache::ResultCache::Global();
  rc.set_admit_min_us(0);
  rc.Clear();
  auto replay = [&](cache::Mode mode) {
    for (const Q& q : mix) {
      QueryOptions o = Opts(mode);
      o.engine = q.engine;
      auto r = QueryProfiled(obj, q.text, o);
      benchmark::DoNotOptimize(r->table.num_rows());
    }
  };
  replay(cache::Mode::kDerive);  // prime
  const auto before = rc.stats();
  for (auto _ : state) replay(cache::Mode::kDerive);
  const auto after = rc.stats();
  const double lookups = double((after.hits - before.hits) +
                                (after.misses - before.misses));
  state.counters["hit_rate"] =
      lookups == 0 ? 0
                   : double((after.hits - before.hits) +
                            (after.derived_hits - before.derived_hits)) /
                         lookups;
  state.counters["queries"] = double(std::size(mix));
}
BENCHMARK(BM_WorkloadReplayWarm)->Unit(benchmark::kMicrosecond);

// The same mix with the cache off: the cold-path baseline WorkloadReplayWarm
// is measured against.
void BM_WorkloadReplayCold(benchmark::State& state) {
  const auto& obj = BigRetail();
  struct Q {
    const char* text;
    QueryEngine engine;
  };
  const Q mix[] = {
      {"SELECT sum(amount) BY store", QueryEngine::kMolap},
      {"SELECT sum(amount) BY store", QueryEngine::kRolap},
      {"SELECT sum(amount) BY city", QueryEngine::kRelational},
      {"SELECT sum(qty), avg(amount) BY category", QueryEngine::kRelational},
      {"SELECT sum(amount) BY month WHERE city = 'city1'",
       QueryEngine::kRelational},
      {"SELECT sum(amount) BY CUBE(city, month)", QueryEngine::kRelational},
      {"SELECT count() WHERE price_range = 'premium'",
       QueryEngine::kRelational},
  };
  for (auto _ : state) {
    for (const Q& q : mix) {
      QueryOptions o = Opts(cache::Mode::kOff);
      o.engine = q.engine;
      auto r = QueryProfiled(obj, q.text, o);
      benchmark::DoNotOptimize(r->table.num_rows());
    }
  }
  state.counters["queries"] = double(std::size(mix));
}
BENCHMARK(BM_WorkloadReplayCold)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
