// Ablation bench for DESIGN.md's design choices:
//  * backend: MOLAP array vs plain ROLAP scan vs ROLAP with bitmap indexes
//    (the ROLAP proponents' "encoding and compression" rebuttal, §6.6);
//  * summarizability enforcement: what the §3.3.2 safety checks cost per
//    roll-up;
//  * weighted-average maintenance: the §5.1 sum/count bookkeeping vs naive
//    unweighted cells.
//
// Counters: bytes (read per query), store_bytes.

#include <benchmark/benchmark.h>

#include "statcube/olap/backend.h"
#include "statcube/olap/operators.h"
#include "statcube/olap/sparse_cube.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

const RetailData& Data() {
  static RetailData data = [] {
    RetailOptions opt;
    opt.num_products = 40;
    opt.num_stores = 10;
    opt.num_days = 60;
    opt.num_rows = 25000;
    return *MakeRetailWorkload(opt);
  }();
  return data;
}

void RunBackend(benchmark::State& state, CubeBackend* backend) {
  int i = 0;
  for (auto _ : state) {
    backend->counter().Reset();
    double v = *backend->Sum(
        {{"product", Value("prod" + std::to_string(i % 40))}});
    benchmark::DoNotOptimize(v);
    ++i;
  }
  state.counters["bytes"] = double(backend->counter().bytes_read());
  state.counters["store_bytes"] = double(backend->ByteSize());
}

void BM_BackendMolap(benchmark::State& state) {
  auto b = MakeMolapBackend(Data().object, "amount").ValueOrDie();
  RunBackend(state, b.get());
}
BENCHMARK(BM_BackendMolap);

void BM_BackendRolapScan(benchmark::State& state) {
  auto b = MakeRolapBackend(Data().object, "amount").ValueOrDie();
  RunBackend(state, b.get());
}
BENCHMARK(BM_BackendRolapScan);

void BM_BackendRolapBitmap(benchmark::State& state) {
  auto b = MakeRolapBackend(Data().object, "amount",
                            {.build_bitmap_indexes = true})
               .ValueOrDie();
  RunBackend(state, b.get());
}
BENCHMARK(BM_BackendRolapBitmap);

void BM_BackendSparseMolap(benchmark::State& state) {
  // The header-compressed MOLAP flavor: pays a log factor per slab segment,
  // stores only occupied runs.
  auto cube = SparseMolapCube::Build(Data().object, "amount").ValueOrDie();
  int i = 0;
  for (auto _ : state) {
    double v =
        *cube.SumWhere({{"product", Value("prod" + std::to_string(i % 40))}});
    benchmark::DoNotOptimize(v);
    ++i;
  }
  state.counters["store_bytes"] = double(cube.ByteSize());
  state.counters["compression_x"] = cube.compression_ratio();
}
BENCHMARK(BM_BackendSparseMolap);

void BM_RollupWithEnforcement(benchmark::State& state) {
  const StatisticalObject& obj = Data().object;
  for (auto _ : state) {
    auto r = SAggregate(obj, "store", "by_city", 1,
                        {.enforce_summarizability = true});
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_RollupWithEnforcement);

void BM_RollupWithoutEnforcement(benchmark::State& state) {
  const StatisticalObject& obj = Data().object;
  for (auto _ : state) {
    auto r = SAggregate(obj, "store", "by_city", 1,
                        {.enforce_summarizability = false});
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_RollupWithoutEnforcement);

void BM_ProjectWeightedAvg(benchmark::State& state) {
  // Object with an avg measure + weight: the §5.1 bookkeeping.
  StatisticalObject obj("w");
  (void)obj.AddDimension(Dimension("a"));
  (void)obj.AddDimension(Dimension("b"));
  (void)obj.AddMeasure({"avg_v", "", MeasureType::kValuePerUnit, AggFn::kAvg,
                        "n"});
  (void)obj.AddMeasure({"n", "", MeasureType::kFlow, AggFn::kSum, ""});
  for (int a = 0; a < 100; ++a)
    for (int b = 0; b < 50; ++b)
      (void)obj.AddCell({Value("a" + std::to_string(a)),
                         Value("b" + std::to_string(b))},
                        {Value(double(a + b)), Value(int64_t(1 + b))});
  for (auto _ : state) {
    auto r = SProject(obj, "b", {.enforce_summarizability = false});
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ProjectWeightedAvg);

void BM_ProjectUnweightedAvg(benchmark::State& state) {
  StatisticalObject obj("u");
  (void)obj.AddDimension(Dimension("a"));
  (void)obj.AddDimension(Dimension("b"));
  (void)obj.AddMeasure({"avg_v", "", MeasureType::kValuePerUnit, AggFn::kAvg,
                        ""});
  for (int a = 0; a < 100; ++a)
    for (int b = 0; b < 50; ++b)
      (void)obj.AddCell({Value("a" + std::to_string(a)),
                         Value("b" + std::to_string(b))},
                        {Value(double(a + b))});
  for (auto _ : state) {
    auto r = SProject(obj, "b", {.enforce_summarizability = false});
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ProjectUnweightedAvg);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
