// Experiment C2 (paper §7 — privacy). Claims: the tracker [DS80]
// compromises a size-restricted database in a handful of legal queries;
// each defense trades something — output noise buys privacy at accuracy
// cost (error grows with noise), overlap control eventually refuses
// everything, suppression removes cells.
//
// Counters: queries_per_secret, attack_error, refusal_rate, suppressed.

#include <benchmark/benchmark.h>

#include <cmath>

#include "statcube/privacy/protected_db.h"
#include "statcube/privacy/suppression.h"
#include "statcube/privacy/tracker.h"
#include "statcube/relational/aggregate.h"
#include "statcube/workload/hmo.h"

namespace statcube {
namespace {

Table MakeMicro() {
  HmoOptions opt;
  opt.num_visits = 3000;
  Table t = *MakeHmoMicroData(opt);
  // Plant a unique individual.
  t.mutable_rows()[0][0] = Value("unique_patient");
  t.mutable_rows()[0][4] = Value(424242);
  return t;
}

void BM_TrackerAttack(benchmark::State& state) {
  Table micro = MakeMicro();
  auto target =
      expr::ColumnEq(micro.schema(), "patient", Value("unique_patient"));
  double recovered = 0;
  uint64_t queries = 0;
  for (auto _ : state) {
    ProtectedDatabase db(micro, {.min_query_set_size = 10});
    auto male = expr::ColumnEq(micro.schema(), "hospital", Value("hosp0"));
    GeneralTracker t{*male, expr::Not(*male), "hospital = hosp0"};
    TrackerAttack attack(&db, t);
    recovered = *attack.Sum("cost", *target);
    queries = attack.queries_used();
    benchmark::DoNotOptimize(recovered);
  }
  state.counters["queries_per_secret"] = double(queries);
  state.counters["attack_error"] = std::abs(recovered - 424242.0);
}
BENCHMARK(BM_TrackerAttack);

void BM_TrackerUnderNoise(benchmark::State& state) {
  double noise = double(state.range(0));
  Table micro = MakeMicro();
  auto target =
      expr::ColumnEq(micro.schema(), "patient", Value("unique_patient"));
  double err_sum = 0;
  int trials = 0;
  for (auto _ : state) {
    ProtectedDatabase db(micro, {.min_query_set_size = 10,
                                 .output_noise_stddev = noise,
                                 .seed = uint64_t(trials) + 1});
    auto male = expr::ColumnEq(micro.schema(), "hospital", Value("hosp0"));
    GeneralTracker t{*male, expr::Not(*male), "hospital = hosp0"};
    TrackerAttack attack(&db, t);
    double v = *attack.Sum("cost", *target);
    err_sum += std::abs(v - 424242.0);
    ++trials;
    benchmark::DoNotOptimize(v);
  }
  state.counters["attack_error"] = err_sum / double(trials);
}
BENCHMARK(BM_TrackerUnderNoise)->Arg(0)->Arg(100)->Arg(1000)->Arg(10000);

void BM_OverlapControlDegradation(benchmark::State& state) {
  // How quickly does overlap control exhaust the database? Issue random
  // hospital/disease queries until refused.
  Table micro = MakeMicro();
  uint64_t answered = 0, refused = 0;
  for (auto _ : state) {
    ProtectedDatabase db(micro,
                         {.min_query_set_size = 10,
                          .max_overlap = size_t(state.range(0))});
    for (int h = 0; h < 6; ++h) {
      for (int m = 0; m < 6; ++m) {
        auto pred = expr::And(
            {*expr::ColumnEq(micro.schema(), "hospital",
                             Value("hosp" + std::to_string(h))),
             *expr::ColumnEq(micro.schema(), "month",
                             Value("1996-" + std::to_string(1 + m)))});
        (void)db.Query(AggFn::kAvg, "cost", pred);
      }
    }
    // And the big overlapping queries that a tracker would need:
    for (int h = 0; h < 6; ++h) {
      auto pred = expr::ColumnEq(micro.schema(), "hospital",
                                 Value("hosp" + std::to_string(h)));
      (void)db.Query(AggFn::kAvg, "cost", *pred);
    }
    answered = db.queries_answered();
    refused = db.queries_refused();
  }
  state.counters["refusal_rate"] =
      double(refused) / double(answered + refused);
}
BENCHMARK(BM_OverlapControlDegradation)->Arg(5)->Arg(50)->Arg(500);

void BM_CellSuppression(benchmark::State& state) {
  // Suppression volume as the threshold rises.
  HmoOptions opt;
  opt.num_visits = 3000;
  auto obj = MakeHmoWorkload(opt);
  const Table& macro = obj->data();
  size_t primary = 0, secondary = 0;
  for (auto _ : state) {
    auto r = SuppressCells(macro, {"disease", "hospital", "month"}, "visits",
                           {"cost", "visits"},
                           {.count_threshold = state.range(0)});
    primary = r->primary.size();
    secondary = r->secondary.size();
    benchmark::DoNotOptimize(r->published.num_rows());
  }
  state.counters["suppressed_primary"] = double(primary);
  state.counters["suppressed_secondary"] = double(secondary);
  state.counters["cells"] = double(macro.num_rows());
}
BENCHMARK(BM_CellSuppression)->Arg(2)->Arg(5)->Arg(10);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
