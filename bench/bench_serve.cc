// Serving-layer overhead: what the front door adds on top of the query it
// admits. The admission cycle (TenantRegistry::Admit + Release) and the
// execute-or-shed gate (AdmissionQueue::Enter + Exit) are priced alone —
// they run under one mutex each, so their cost bounds the serving layer's
// scalability — then ServeRequest is measured end to end against the same
// query issued through QueryProfiled directly, making the envelope cost
// (JSON parse, validation, admission, result encoding) visible as the
// difference. Rejection paths are benchmarked too: a 429 must be far
// cheaper than the query it refuses, or shedding does not shed load.
//
// Counters: none; compare wall times of adjacent benchmarks.

#include <benchmark/benchmark.h>

#include <string>

#include "statcube/obs/http_server.h"
#include "statcube/query/parser.h"
#include "statcube/serve/admission_queue.h"
#include "statcube/serve/front_door.h"
#include "statcube/serve/json_value.h"
#include "statcube/serve/tenant_registry.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

const StatisticalObject& Sales() {
  static StatisticalObject obj = [] {
    RetailOptions opt;
    opt.num_products = 30;
    opt.num_stores = 8;
    opt.num_days = 30;
    opt.num_rows = 20000;
    return MakeRetailWorkload(opt)->object;
  }();
  return obj;
}

constexpr char kBody[] =
    R"({"query":"SELECT sum(amount) BY store","tenant":"bench"})";

// --------------------------------------------------------- admission cycle

void BM_TenantAdmitRelease(benchmark::State& state) {
  serve::TenantQuota quota;
  quota.rate_qps = 1e12;  // bucket arithmetic runs, never rejects
  quota.burst = 1e12;
  quota.bytes_per_sec = 1'000'000'000;
  quota.byte_burst = 1'000'000'000;
  serve::TenantRegistry tenants(quota);
  for (auto _ : state) {
    serve::Admission a = tenants.Admit("bench");
    benchmark::DoNotOptimize(a.ok());
    tenants.Release("bench", 1024, true);
  }
}
BENCHMARK(BM_TenantAdmitRelease);

void BM_TenantAdmitRejectedRate(benchmark::State& state) {
  serve::TenantQuota quota;
  quota.rate_qps = 1e-9;  // bucket effectively never refills
  quota.burst = 1;
  serve::TenantRegistry tenants(quota);
  (void)tenants.Admit("bench");  // spend the only token
  tenants.Release("bench", 0, true);
  for (auto _ : state) {
    serve::Admission a = tenants.Admit("bench");
    benchmark::DoNotOptimize(a.retry_after_ms);
  }
}
BENCHMARK(BM_TenantAdmitRejectedRate);

void BM_QueueEnterExit(benchmark::State& state) {
  serve::AdmissionQueue gate(
      {.max_active = 4, .max_queued = 16, .max_wait_ms = 1000});
  for (auto _ : state) {
    serve::EnterOutcome e = gate.Enter();
    benchmark::DoNotOptimize(e);
    gate.Exit();
  }
}
BENCHMARK(BM_QueueEnterExit);

// ------------------------------------------------------------ request JSON

void BM_ParseRequestJson(benchmark::State& state) {
  const std::string body = kBody;
  for (auto _ : state) {
    auto v = serve::ParseJson(body);
    benchmark::DoNotOptimize(v.ok());
  }
}
BENCHMARK(BM_ParseRequestJson);

// ------------------------------------------------- end-to-end serving path

void BM_ServeRequestOk(benchmark::State& state) {
  (void)Sales();
  serve::QueryFrontDoor door(Sales());
  obs::HttpRequest req;
  req.method = "POST";
  req.path = "/query";
  req.body = kBody;
  for (auto _ : state) {
    obs::HttpResponse resp = door.ServeRequest(req);
    benchmark::DoNotOptimize(resp.body.size());
  }
}
BENCHMARK(BM_ServeRequestOk);

// The same query through QueryProfiled directly: the difference vs
// BM_ServeRequestOk is the serving envelope.
void BM_QueryProfiledDirect(benchmark::State& state) {
  (void)Sales();
  QueryOptions qopt;
  qopt.tenant = "bench";
  for (auto _ : state) {
    auto r = QueryProfiled(Sales(), "SELECT sum(amount) BY store", qopt);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_QueryProfiledDirect);

void BM_ServeRequestRejected429(benchmark::State& state) {
  serve::FrontDoorOptions opt;
  opt.default_quota.rate_qps = 1e-9;
  opt.default_quota.burst = 1;
  serve::QueryFrontDoor door(Sales(), opt);
  obs::HttpRequest req;
  req.method = "POST";
  req.path = "/query";
  req.body = kBody;
  (void)door.ServeRequest(req);  // spend the token
  for (auto _ : state) {
    obs::HttpResponse resp = door.ServeRequest(req);
    benchmark::DoNotOptimize(resp.status);
  }
}
BENCHMARK(BM_ServeRequestRejected429);

void BM_ServeRequestBadJson400(benchmark::State& state) {
  serve::QueryFrontDoor door(Sales());
  obs::HttpRequest req;
  req.method = "POST";
  req.path = "/query";
  req.body = "{\"query\":";  // truncated
  for (auto _ : state) {
    obs::HttpResponse resp = door.ServeRequest(req);
    benchmark::DoNotOptimize(resp.status);
  }
}
BENCHMARK(BM_ServeRequestBadJson400);

// ------------------------------------------------------- result encoding

void BM_TableToJson(benchmark::State& state) {
  auto r = Query(Sales(), "SELECT sum(amount) BY product, store");
  for (auto _ : state) {
    std::string json = serve::TableToJson(*r);
    benchmark::DoNotOptimize(json.size());
  }
}
BENCHMARK(BM_TableToJson);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
