// Experiment F9 (paper §4.3, Figure 9 — marginals). Claim: "it is generally
// not efficient to compute the marginals for very large datasets" — deriving
// every total on the fly re-scans the data, storing them (as materialized
// summary rows / the CUBE result) answers marginal queries in O(result).
// Also demonstrates the case where marginals MUST be stored: when
// summarizability does not hold, they cannot be derived at all.
//
// Counters: rows_scanned.

#include <benchmark/benchmark.h>

#include "statcube/relational/cube_operator.h"
#include "statcube/workload/census.h"

namespace statcube {
namespace {

const Table& Macro() {
  static Table t = [] {
    CensusOptions opt;
    opt.num_states = 8;
    opt.counties_per_state = 10;
    return MakeCensusWorkload(opt)->data();
  }();
  return t;
}

void BM_MarginalsOnTheFly(benchmark::State& state) {
  // Every marginal request = one group-by over the full macro table.
  const Table& t = Macro();
  for (auto _ : state) {
    auto by_race = GroupBy(t, {"race"}, {{AggFn::kSum, "population", "s"}});
    auto by_sex = GroupBy(t, {"sex"}, {{AggFn::kSum, "population", "s"}});
    auto by_age = GroupBy(t, {"age_group"}, {{AggFn::kSum, "population", "s"}});
    auto grand = GroupBy(t, {}, {{AggFn::kSum, "population", "s"}});
    benchmark::DoNotOptimize(by_race->num_rows() + by_sex->num_rows() +
                             by_age->num_rows() + grand->num_rows());
  }
  state.counters["rows_scanned"] = double(4 * Macro().num_rows());
}
BENCHMARK(BM_MarginalsOnTheFly);

void BM_MarginalsPrecomputed(benchmark::State& state) {
  // Store the cube once; marginal requests become lookups in the (small)
  // cube result.
  const Table& t = Macro();
  auto cube = CubeBy(t, {"race", "sex", "age_group"},
                     {{AggFn::kSum, "population", "s"}});
  for (auto _ : state) {
    // "total column for race r": scan the cube rows with sex=ALL, age=ALL.
    double total = 0;
    for (const Row& r : cube->rows())
      if (!r[0].is_all() && r[1].is_all() && r[2].is_all())
        total += r[3].AsDouble();
    benchmark::DoNotOptimize(total);
  }
  state.counters["rows_scanned"] = double(cube->num_rows());
  state.counters["cube_rows"] = double(cube->num_rows());
  state.counters["base_rows"] = double(t.num_rows());
}
BENCHMARK(BM_MarginalsPrecomputed);

void BM_CubeBuildCostAmortized(benchmark::State& state) {
  // The one-time cost the precomputed strategy pays.
  const Table& t = Macro();
  for (auto _ : state) {
    auto cube = CubeBy(t, {"race", "sex", "age_group"},
                       {{AggFn::kSum, "population", "s"}});
    benchmark::DoNotOptimize(cube->num_rows());
  }
}
BENCHMARK(BM_CubeBuildCostAmortized);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
