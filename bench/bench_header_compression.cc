// Experiment F21 (paper §6.2, Figure 21 — [EOA81] header compression).
// Claims: nulls are compressed out entirely (space ~ density); the B+-tree
// over the accumulated run-length header answers both the forward mapping
// (position -> value) and range sums in O(log runs); the inverse mapping
// works too.
//
// Counters: compression_x (dense bytes / compressed bytes), runs.

#include <benchmark/benchmark.h>

#include "statcube/common/rng.h"
#include "statcube/molap/header_compressed.h"

namespace statcube {
namespace {

// Clustered sparsity: alternating dense and empty stretches, like a
// production cube where most counties produce nothing.
std::vector<double> MakeClustered(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> cells(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t run = 1 + rng.Uniform(64);
    bool occupied = rng.Bernoulli(density);
    for (size_t k = 0; k < run && i < n; ++k, ++i)
      if (occupied) cells[i] = double(1 + rng.Uniform(1000));
  }
  return cells;
}

void BM_HeaderCompressedGet(benchmark::State& state) {
  double density = double(state.range(0)) / 100.0;
  auto cells = MakeClustered(1 << 20, density, 3);
  HeaderCompressedArray h(cells);
  size_t pos = 0;
  for (auto _ : state) {
    double v = *h.Get(pos);
    benchmark::DoNotOptimize(v);
    pos = (pos + 104729) % cells.size();
  }
  state.counters["compression_x"] = h.CompressionRatio();
  state.counters["runs"] = double(h.num_runs());
  state.counters["stored"] = double(h.stored_count());
}
BENCHMARK(BM_HeaderCompressedGet)->Arg(1)->Arg(5)->Arg(20)->Arg(50);

void BM_DenseGet(benchmark::State& state) {
  auto cells = MakeClustered(1 << 20, 0.05, 3);
  size_t pos = 0;
  for (auto _ : state) {
    double v = cells[pos];
    benchmark::DoNotOptimize(v);
    pos = (pos + 104729) % cells.size();
  }
  state.counters["bytes"] = double(cells.size() * sizeof(double));
}
BENCHMARK(BM_DenseGet);

void BM_HeaderCompressedRangeSum(benchmark::State& state) {
  auto cells = MakeClustered(1 << 20, 0.05, 3);
  HeaderCompressedArray h(cells);
  uint64_t lo = 0;
  for (auto _ : state) {
    double v = *h.SumPositions(lo, lo + 65536);
    benchmark::DoNotOptimize(v);
    lo = (lo + 104729) % (cells.size() - 65536);
  }
}
BENCHMARK(BM_HeaderCompressedRangeSum);

void BM_DenseRangeSum(benchmark::State& state) {
  auto cells = MakeClustered(1 << 20, 0.05, 3);
  uint64_t lo = 0;
  for (auto _ : state) {
    double v = 0;
    for (uint64_t i = lo; i < lo + 65536; ++i) v += cells[i];
    benchmark::DoNotOptimize(v);
    lo = (lo + 104729) % (cells.size() - 65536);
  }
}
BENCHMARK(BM_DenseRangeSum);

void BM_InverseMapping(benchmark::State& state) {
  auto cells = MakeClustered(1 << 20, 0.05, 3);
  HeaderCompressedArray h(cells);
  uint64_t s = 0;
  for (auto _ : state) {
    uint64_t pos = *h.LogicalPositionOf(s);
    benchmark::DoNotOptimize(pos);
    s = (s + 7919) % h.stored_count();
  }
}
BENCHMARK(BM_InverseMapping);

}  // namespace
}  // namespace statcube

BENCHMARK_MAIN();
