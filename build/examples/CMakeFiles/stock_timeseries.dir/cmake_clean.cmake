file(REMOVE_RECURSE
  "CMakeFiles/stock_timeseries.dir/stock_timeseries.cpp.o"
  "CMakeFiles/stock_timeseries.dir/stock_timeseries.cpp.o.d"
  "stock_timeseries"
  "stock_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
