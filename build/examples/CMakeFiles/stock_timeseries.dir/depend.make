# Empty dependencies file for stock_timeseries.
# This may be replaced when dependencies are built.
