# Empty dependencies file for retail_olap.
# This may be replaced when dependencies are built.
