file(REMOVE_RECURSE
  "CMakeFiles/census_sdb.dir/census_sdb.cpp.o"
  "CMakeFiles/census_sdb.dir/census_sdb.cpp.o.d"
  "census_sdb"
  "census_sdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_sdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
