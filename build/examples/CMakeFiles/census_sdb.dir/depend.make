# Empty dependencies file for census_sdb.
# This may be replaced when dependencies are built.
