file(REMOVE_RECURSE
  "CMakeFiles/bench_transposed.dir/bench_transposed.cc.o"
  "CMakeFiles/bench_transposed.dir/bench_transposed.cc.o.d"
  "bench_transposed"
  "bench_transposed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transposed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
