# Empty compiler generated dependencies file for bench_transposed.
# This may be replaced when dependencies are built.
