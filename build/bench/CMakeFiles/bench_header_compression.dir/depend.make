# Empty dependencies file for bench_header_compression.
# This may be replaced when dependencies are built.
