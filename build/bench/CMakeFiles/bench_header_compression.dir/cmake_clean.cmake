file(REMOVE_RECURSE
  "CMakeFiles/bench_header_compression.dir/bench_header_compression.cc.o"
  "CMakeFiles/bench_header_compression.dir/bench_header_compression.cc.o.d"
  "bench_header_compression"
  "bench_header_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_header_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
