file(REMOVE_RECURSE
  "CMakeFiles/bench_bit_transposed.dir/bench_bit_transposed.cc.o"
  "CMakeFiles/bench_bit_transposed.dir/bench_bit_transposed.cc.o.d"
  "bench_bit_transposed"
  "bench_bit_transposed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bit_transposed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
