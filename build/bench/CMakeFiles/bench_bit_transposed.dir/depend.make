# Empty dependencies file for bench_bit_transposed.
# This may be replaced when dependencies are built.
