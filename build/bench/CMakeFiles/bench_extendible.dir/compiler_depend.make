# Empty compiler generated dependencies file for bench_extendible.
# This may be replaced when dependencies are built.
