file(REMOVE_RECURSE
  "CMakeFiles/bench_extendible.dir/bench_extendible.cc.o"
  "CMakeFiles/bench_extendible.dir/bench_extendible.cc.o.d"
  "bench_extendible"
  "bench_extendible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extendible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
