# Empty dependencies file for bench_rolap_molap.
# This may be replaced when dependencies are built.
