file(REMOVE_RECURSE
  "CMakeFiles/bench_rolap_molap.dir/bench_rolap_molap.cc.o"
  "CMakeFiles/bench_rolap_molap.dir/bench_rolap_molap.cc.o.d"
  "bench_rolap_molap"
  "bench_rolap_molap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rolap_molap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
