# Empty dependencies file for bench_cube_operator.
# This may be replaced when dependencies are built.
