file(REMOVE_RECURSE
  "CMakeFiles/bench_cube_operator.dir/bench_cube_operator.cc.o"
  "CMakeFiles/bench_cube_operator.dir/bench_cube_operator.cc.o.d"
  "bench_cube_operator"
  "bench_cube_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cube_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
