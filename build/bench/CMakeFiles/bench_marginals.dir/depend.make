# Empty dependencies file for bench_marginals.
# This may be replaced when dependencies are built.
