file(REMOVE_RECURSE
  "CMakeFiles/bench_marginals.dir/bench_marginals.cc.o"
  "CMakeFiles/bench_marginals.dir/bench_marginals.cc.o.d"
  "bench_marginals"
  "bench_marginals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_marginals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
