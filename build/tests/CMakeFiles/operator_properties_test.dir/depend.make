# Empty dependencies file for operator_properties_test.
# This may be replaced when dependencies are built.
