file(REMOVE_RECURSE
  "CMakeFiles/operator_properties_test.dir/operator_properties_test.cc.o"
  "CMakeFiles/operator_properties_test.dir/operator_properties_test.cc.o.d"
  "operator_properties_test"
  "operator_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
