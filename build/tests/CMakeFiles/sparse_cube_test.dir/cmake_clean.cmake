file(REMOVE_RECURSE
  "CMakeFiles/sparse_cube_test.dir/sparse_cube_test.cc.o"
  "CMakeFiles/sparse_cube_test.dir/sparse_cube_test.cc.o.d"
  "sparse_cube_test"
  "sparse_cube_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_cube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
