file(REMOVE_RECURSE
  "CMakeFiles/schema_graph_test.dir/schema_graph_test.cc.o"
  "CMakeFiles/schema_graph_test.dir/schema_graph_test.cc.o.d"
  "schema_graph_test"
  "schema_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
