file(REMOVE_RECURSE
  "CMakeFiles/terminology_test.dir/terminology_test.cc.o"
  "CMakeFiles/terminology_test.dir/terminology_test.cc.o.d"
  "terminology_test"
  "terminology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terminology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
