# Empty compiler generated dependencies file for terminology_test.
# This may be replaced when dependencies are built.
