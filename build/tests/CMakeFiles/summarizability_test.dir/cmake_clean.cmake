file(REMOVE_RECURSE
  "CMakeFiles/summarizability_test.dir/summarizability_test.cc.o"
  "CMakeFiles/summarizability_test.dir/summarizability_test.cc.o.d"
  "summarizability_test"
  "summarizability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summarizability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
