# Empty dependencies file for summarizability_test.
# This may be replaced when dependencies are built.
