file(REMOVE_RECURSE
  "CMakeFiles/data_cube_test.dir/data_cube_test.cc.o"
  "CMakeFiles/data_cube_test.dir/data_cube_test.cc.o.d"
  "data_cube_test"
  "data_cube_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_cube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
