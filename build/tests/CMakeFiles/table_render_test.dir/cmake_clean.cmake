file(REMOVE_RECURSE
  "CMakeFiles/table_render_test.dir/table_render_test.cc.o"
  "CMakeFiles/table_render_test.dir/table_render_test.cc.o.d"
  "table_render_test"
  "table_render_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
