# Empty dependencies file for table_render_test.
# This may be replaced when dependencies are built.
