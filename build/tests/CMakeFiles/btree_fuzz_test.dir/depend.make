# Empty dependencies file for btree_fuzz_test.
# This may be replaced when dependencies are built.
