file(REMOVE_RECURSE
  "CMakeFiles/molap_cube_test.dir/molap_cube_test.cc.o"
  "CMakeFiles/molap_cube_test.dir/molap_cube_test.cc.o.d"
  "molap_cube_test"
  "molap_cube_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molap_cube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
