# Empty dependencies file for molap_cube_test.
# This may be replaced when dependencies are built.
