file(REMOVE_RECURSE
  "CMakeFiles/auto_aggregate_test.dir/auto_aggregate_test.cc.o"
  "CMakeFiles/auto_aggregate_test.dir/auto_aggregate_test.cc.o.d"
  "auto_aggregate_test"
  "auto_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
