# Empty compiler generated dependencies file for auto_aggregate_test.
# This may be replaced when dependencies are built.
