# Empty dependencies file for molap_test.
# This may be replaced when dependencies are built.
