file(REMOVE_RECURSE
  "CMakeFiles/molap_test.dir/molap_test.cc.o"
  "CMakeFiles/molap_test.dir/molap_test.cc.o.d"
  "molap_test"
  "molap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
