# Empty dependencies file for render_edge_test.
# This may be replaced when dependencies are built.
