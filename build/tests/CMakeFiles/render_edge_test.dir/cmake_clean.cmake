file(REMOVE_RECURSE
  "CMakeFiles/render_edge_test.dir/render_edge_test.cc.o"
  "CMakeFiles/render_edge_test.dir/render_edge_test.cc.o.d"
  "render_edge_test"
  "render_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
