# Empty compiler generated dependencies file for statistical_object_test.
# This may be replaced when dependencies are built.
