file(REMOVE_RECURSE
  "CMakeFiles/statistical_object_test.dir/statistical_object_test.cc.o"
  "CMakeFiles/statistical_object_test.dir/statistical_object_test.cc.o.d"
  "statistical_object_test"
  "statistical_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistical_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
