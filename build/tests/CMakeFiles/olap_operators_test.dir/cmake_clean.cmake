file(REMOVE_RECURSE
  "CMakeFiles/olap_operators_test.dir/olap_operators_test.cc.o"
  "CMakeFiles/olap_operators_test.dir/olap_operators_test.cc.o.d"
  "olap_operators_test"
  "olap_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
