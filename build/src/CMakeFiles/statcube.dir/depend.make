# Empty dependencies file for statcube.
# This may be replaced when dependencies are built.
