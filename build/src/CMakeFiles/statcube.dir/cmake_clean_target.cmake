file(REMOVE_RECURSE
  "libstatcube.a"
)
