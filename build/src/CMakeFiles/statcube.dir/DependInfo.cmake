
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/statcube/common/rng.cc" "src/CMakeFiles/statcube.dir/statcube/common/rng.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/common/rng.cc.o.d"
  "/root/repo/src/statcube/common/status.cc" "src/CMakeFiles/statcube.dir/statcube/common/status.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/common/status.cc.o.d"
  "/root/repo/src/statcube/common/str_util.cc" "src/CMakeFiles/statcube.dir/statcube/common/str_util.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/common/str_util.cc.o.d"
  "/root/repo/src/statcube/common/value.cc" "src/CMakeFiles/statcube.dir/statcube/common/value.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/common/value.cc.o.d"
  "/root/repo/src/statcube/core/catalog.cc" "src/CMakeFiles/statcube.dir/statcube/core/catalog.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/catalog.cc.o.d"
  "/root/repo/src/statcube/core/classification.cc" "src/CMakeFiles/statcube.dir/statcube/core/classification.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/classification.cc.o.d"
  "/root/repo/src/statcube/core/dimension.cc" "src/CMakeFiles/statcube.dir/statcube/core/dimension.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/dimension.cc.o.d"
  "/root/repo/src/statcube/core/layout.cc" "src/CMakeFiles/statcube.dir/statcube/core/layout.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/layout.cc.o.d"
  "/root/repo/src/statcube/core/measure.cc" "src/CMakeFiles/statcube.dir/statcube/core/measure.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/measure.cc.o.d"
  "/root/repo/src/statcube/core/schema_graph.cc" "src/CMakeFiles/statcube.dir/statcube/core/schema_graph.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/schema_graph.cc.o.d"
  "/root/repo/src/statcube/core/statistical_object.cc" "src/CMakeFiles/statcube.dir/statcube/core/statistical_object.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/statistical_object.cc.o.d"
  "/root/repo/src/statcube/core/summarizability.cc" "src/CMakeFiles/statcube.dir/statcube/core/summarizability.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/summarizability.cc.o.d"
  "/root/repo/src/statcube/core/table_render.cc" "src/CMakeFiles/statcube.dir/statcube/core/table_render.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/table_render.cc.o.d"
  "/root/repo/src/statcube/core/terminology.cc" "src/CMakeFiles/statcube.dir/statcube/core/terminology.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/core/terminology.cc.o.d"
  "/root/repo/src/statcube/io/csv.cc" "src/CMakeFiles/statcube.dir/statcube/io/csv.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/io/csv.cc.o.d"
  "/root/repo/src/statcube/matching/matching.cc" "src/CMakeFiles/statcube.dir/statcube/matching/matching.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/matching/matching.cc.o.d"
  "/root/repo/src/statcube/materialize/greedy.cc" "src/CMakeFiles/statcube.dir/statcube/materialize/greedy.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/materialize/greedy.cc.o.d"
  "/root/repo/src/statcube/materialize/lattice.cc" "src/CMakeFiles/statcube.dir/statcube/materialize/lattice.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/materialize/lattice.cc.o.d"
  "/root/repo/src/statcube/materialize/view_store.cc" "src/CMakeFiles/statcube.dir/statcube/materialize/view_store.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/materialize/view_store.cc.o.d"
  "/root/repo/src/statcube/molap/chunked_array.cc" "src/CMakeFiles/statcube.dir/statcube/molap/chunked_array.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/molap/chunked_array.cc.o.d"
  "/root/repo/src/statcube/molap/dense_array.cc" "src/CMakeFiles/statcube.dir/statcube/molap/dense_array.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/molap/dense_array.cc.o.d"
  "/root/repo/src/statcube/molap/extendible_array.cc" "src/CMakeFiles/statcube.dir/statcube/molap/extendible_array.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/molap/extendible_array.cc.o.d"
  "/root/repo/src/statcube/molap/header_compressed.cc" "src/CMakeFiles/statcube.dir/statcube/molap/header_compressed.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/molap/header_compressed.cc.o.d"
  "/root/repo/src/statcube/olap/auto_aggregate.cc" "src/CMakeFiles/statcube.dir/statcube/olap/auto_aggregate.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/auto_aggregate.cc.o.d"
  "/root/repo/src/statcube/olap/backend.cc" "src/CMakeFiles/statcube.dir/statcube/olap/backend.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/backend.cc.o.d"
  "/root/repo/src/statcube/olap/cube_build.cc" "src/CMakeFiles/statcube.dir/statcube/olap/cube_build.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/cube_build.cc.o.d"
  "/root/repo/src/statcube/olap/data_cube.cc" "src/CMakeFiles/statcube.dir/statcube/olap/data_cube.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/data_cube.cc.o.d"
  "/root/repo/src/statcube/olap/homomorphism.cc" "src/CMakeFiles/statcube.dir/statcube/olap/homomorphism.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/homomorphism.cc.o.d"
  "/root/repo/src/statcube/olap/molap_cube.cc" "src/CMakeFiles/statcube.dir/statcube/olap/molap_cube.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/molap_cube.cc.o.d"
  "/root/repo/src/statcube/olap/operators.cc" "src/CMakeFiles/statcube.dir/statcube/olap/operators.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/operators.cc.o.d"
  "/root/repo/src/statcube/olap/sparse_cube.cc" "src/CMakeFiles/statcube.dir/statcube/olap/sparse_cube.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/sparse_cube.cc.o.d"
  "/root/repo/src/statcube/olap/statistics.cc" "src/CMakeFiles/statcube.dir/statcube/olap/statistics.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/statistics.cc.o.d"
  "/root/repo/src/statcube/olap/timeseries.cc" "src/CMakeFiles/statcube.dir/statcube/olap/timeseries.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/olap/timeseries.cc.o.d"
  "/root/repo/src/statcube/privacy/audit.cc" "src/CMakeFiles/statcube.dir/statcube/privacy/audit.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/privacy/audit.cc.o.d"
  "/root/repo/src/statcube/privacy/perturbation.cc" "src/CMakeFiles/statcube.dir/statcube/privacy/perturbation.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/privacy/perturbation.cc.o.d"
  "/root/repo/src/statcube/privacy/protected_db.cc" "src/CMakeFiles/statcube.dir/statcube/privacy/protected_db.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/privacy/protected_db.cc.o.d"
  "/root/repo/src/statcube/privacy/suppression.cc" "src/CMakeFiles/statcube.dir/statcube/privacy/suppression.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/privacy/suppression.cc.o.d"
  "/root/repo/src/statcube/privacy/tracker.cc" "src/CMakeFiles/statcube.dir/statcube/privacy/tracker.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/privacy/tracker.cc.o.d"
  "/root/repo/src/statcube/query/parser.cc" "src/CMakeFiles/statcube.dir/statcube/query/parser.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/query/parser.cc.o.d"
  "/root/repo/src/statcube/relational/aggregate.cc" "src/CMakeFiles/statcube.dir/statcube/relational/aggregate.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/relational/aggregate.cc.o.d"
  "/root/repo/src/statcube/relational/cube_operator.cc" "src/CMakeFiles/statcube.dir/statcube/relational/cube_operator.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/relational/cube_operator.cc.o.d"
  "/root/repo/src/statcube/relational/expression.cc" "src/CMakeFiles/statcube.dir/statcube/relational/expression.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/relational/expression.cc.o.d"
  "/root/repo/src/statcube/relational/join.cc" "src/CMakeFiles/statcube.dir/statcube/relational/join.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/relational/join.cc.o.d"
  "/root/repo/src/statcube/relational/operators.cc" "src/CMakeFiles/statcube.dir/statcube/relational/operators.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/relational/operators.cc.o.d"
  "/root/repo/src/statcube/relational/star_schema.cc" "src/CMakeFiles/statcube.dir/statcube/relational/star_schema.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/relational/star_schema.cc.o.d"
  "/root/repo/src/statcube/relational/table.cc" "src/CMakeFiles/statcube.dir/statcube/relational/table.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/relational/table.cc.o.d"
  "/root/repo/src/statcube/sampling/sampling.cc" "src/CMakeFiles/statcube.dir/statcube/sampling/sampling.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/sampling/sampling.cc.o.d"
  "/root/repo/src/statcube/storage/rle.cc" "src/CMakeFiles/statcube.dir/statcube/storage/rle.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/storage/rle.cc.o.d"
  "/root/repo/src/statcube/storage/stores.cc" "src/CMakeFiles/statcube.dir/statcube/storage/stores.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/storage/stores.cc.o.d"
  "/root/repo/src/statcube/workload/census.cc" "src/CMakeFiles/statcube.dir/statcube/workload/census.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/workload/census.cc.o.d"
  "/root/repo/src/statcube/workload/hmo.cc" "src/CMakeFiles/statcube.dir/statcube/workload/hmo.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/workload/hmo.cc.o.d"
  "/root/repo/src/statcube/workload/retail.cc" "src/CMakeFiles/statcube.dir/statcube/workload/retail.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/workload/retail.cc.o.d"
  "/root/repo/src/statcube/workload/stocks.cc" "src/CMakeFiles/statcube.dir/statcube/workload/stocks.cc.o" "gcc" "src/CMakeFiles/statcube.dir/statcube/workload/stocks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
