// End-to-end tests for the query front door (serve/front_door.h): request
// validation (400), per-tenant admission (429 + Retry-After), load shedding
// (503), the success JSON envelope, and the bit-identical guarantee — the
// served result bytes equal an independent TableToJson encoding of what
// QueryProfiled returns for the same options. The socket-level tests drive a
// real StatsServer with POST bodies, including the 413 oversized-body path.

#include "statcube/serve/front_door.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "json_checker.h"
#include "statcube/obs/http_server.h"
#include "statcube/obs/json.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube::serve {
namespace {

const StatisticalObject& Retail() {
  static StatisticalObject* obj = [] {
    RetailOptions opt;
    opt.num_products = 6;
    opt.num_stores = 4;
    opt.num_cities = 2;
    opt.num_days = 5;
    opt.num_rows = 2000;
    return new StatisticalObject(
        MakeRetailWorkload(opt).ValueOrDie().object);
  }();
  return *obj;
}

obs::HttpRequest Post(const std::string& body) {
  obs::HttpRequest req;
  req.method = "POST";
  req.path = "/query";
  req.body = body;
  return req;
}

std::string Header(const obs::HttpResponse& resp, const std::string& name) {
  for (const auto& [key, value] : resp.headers)
    if (key == name) return value;
  return "";
}

// ------------------------------------------------- validation: the 400 path

TEST(FrontDoorValidationTest, RejectsBadBodies) {
  QueryFrontDoor door(Retail());
  struct Case {
    const char* body;
    const char* needle;  // expected substring of the error message
  };
  const Case cases[] = {
      {"", "JSON parse error"},
      {"not json", "JSON parse error"},
      {"[1,2]", "must be a JSON object"},
      {"\"SELECT sum(amount) BY city\"", "must be a JSON object"},
      {"{}", "must be a non-empty string"},
      {R"({"query":""})", "must be a non-empty string"},
      {R"({"query":42})", "must be a non-empty string"},
      {R"({"query":"SELECT sum(amount) BY city","deadlin_ms":5})",
       "unknown request field"},
      {R"({"query":"SELECT sum(amount) BY city","engine":7})",
       "engine"},
      {R"({"query":"SELECT sum(amount) BY city","engine":"warp"})", "engine"},
      {R"({"query":"SELECT sum(amount) BY city","cache":"sometimes"})",
       "cache"},
      {R"({"query":"SELECT sum(amount) BY city","threads":-1})", "threads"},
      {R"({"query":"SELECT sum(amount) BY city","threads":2.5})", "threads"},
      {R"({"query":"SELECT sum(amount) BY city","threads":100000})",
       "threads"},
      {R"({"query":"SELECT sum(amount) BY city","deadline_ms":-5})",
       "deadline_ms"},
      {R"({"query":"SELECT sum(amount) BY city","render":"yes"})",
       "render"},
      {R"({"query":"SELECT sum(amount) BY city","tenant":""})", "tenant"},
      {R"({"query":"SELECT sum(amount) BY city","tenant":"a b"})", "tenant"},
      {R"({"query":"SELECT sum(amount) BY city","tenant":17})", "tenant"},
  };
  for (const Case& c : cases) {
    obs::HttpResponse resp = door.ServeRequest(Post(c.body));
    EXPECT_EQ(resp.status, 400) << c.body;
    EXPECT_TRUE(statcube::JsonChecker(resp.body).Valid()) << resp.body;
    EXPECT_NE(resp.body.find(c.needle), std::string::npos)
        << c.body << " -> " << resp.body;
  }
  // A validation failure happens before admission: no tenant was charged.
  EXPECT_EQ(door.tenants().TenantCount(), 0u);
  EXPECT_EQ(door.requests(), sizeof(cases) / sizeof(cases[0]));
}

TEST(FrontDoorValidationTest, OversizedTenantNameRejected) {
  QueryFrontDoor door(Retail());
  std::string long_name(65, 'a');
  obs::HttpResponse resp = door.ServeRequest(
      Post(R"({"query":"SELECT sum(amount) BY city","tenant":")" + long_name +
           "\"}"));
  EXPECT_EQ(resp.status, 400);
}

// --------------------------------------------------- success + bit-identical

TEST(FrontDoorServeTest, ServesQueryWithEnvelope) {
  QueryFrontDoor door(Retail());
  obs::HttpResponse resp = door.ServeRequest(
      Post(R"({"query":"SELECT sum(amount) BY city","tenant":"team-a"})"));
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_EQ(resp.content_type, "application/json");
  EXPECT_TRUE(statcube::JsonChecker(resp.body).Valid()) << resp.body;
  for (const char* needle :
       {"\"tenant\":\"team-a\"", "\"engine\":", "\"backend\":", "\"cache\":",
        "\"outcome\":\"ok\"", "\"profile_id\":", "\"result\":",
        "\"columns\":[\"city\",\"sum_amount\"]"}) {
    EXPECT_NE(resp.body.find(needle), std::string::npos)
        << needle << " missing from " << resp.body;
  }
  // No "render" requested: the rendering is not paid for or shipped.
  EXPECT_EQ(resp.body.find("\"rendered\""), std::string::npos);

  // The tenant was admitted, released, and charged the response bytes.
  std::vector<TenantStats> stats = door.tenants().Snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "team-a");
  EXPECT_EQ(stats[0].active, 0);
  EXPECT_EQ(stats[0].admitted, 1u);
  EXPECT_EQ(stats[0].queries_ok, 1u);
  EXPECT_EQ(stats[0].bytes_served, resp.body.size());
}

// The front door must not invent its own execution semantics: for the same
// options, its served bytes embed exactly the table and rendering the CLI
// path (QueryProfiled) produces.
TEST(FrontDoorServeTest, ResultBitIdenticalToQueryProfiledPath) {
  const std::string query =
      "SELECT sum(amount), count(amount) BY CUBE(city, product)";

  QueryOptions qopt;
  qopt.cache = cache::Mode::kOff;
  qopt.threads = 1;
  qopt.tenant = "cli";
  Result<ProfiledQuery> direct = QueryProfiled(Retail(), query, qopt);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  QueryFrontDoor door(Retail());
  obs::HttpResponse resp = door.ServeRequest(Post(
      R"({"query":)" + obs::JsonStr(query) + R"(,"render":true})"));
  ASSERT_EQ(resp.status, 200) << resp.body;

  const std::string expect_result = "\"result\":" + TableToJson(direct->table);
  EXPECT_NE(resp.body.find(expect_result), std::string::npos)
      << "served result differs from the QueryProfiled table";
  const std::string expect_rendered =
      "\"rendered\":" + obs::JsonStr(direct->rendered);
  EXPECT_NE(resp.body.find(expect_rendered), std::string::npos)
      << "served rendering differs from the QueryProfiled rendering";
}

TEST(FrontDoorServeTest, MaxResultRowsTruncatesDataNotRowCount) {
  FrontDoorOptions opt;
  opt.max_result_rows = 1;
  QueryFrontDoor door(Retail(), opt);
  obs::HttpResponse resp = door.ServeRequest(
      Post(R"({"query":"SELECT sum(amount) BY city"})"));
  ASSERT_EQ(resp.status, 200) << resp.body;
  // Two cities -> "rows":2, but only one row of data shipped.
  EXPECT_NE(resp.body.find("\"rows\":2"), std::string::npos) << resp.body;
  size_t data = resp.body.find("\"data\":[[");
  ASSERT_NE(data, std::string::npos);
  EXPECT_EQ(resp.body.find("],[", data), std::string::npos)
      << "more than one data row: " << resp.body;
}

TEST(FrontDoorServeTest, QueryErrorsMapToStatusAndCarryCode) {
  QueryFrontDoor door(Retail());
  obs::HttpResponse resp =
      door.ServeRequest(Post(R"({"query":"this is not a query"})"));
  EXPECT_EQ(resp.status, 400);
  EXPECT_TRUE(statcube::JsonChecker(resp.body).Valid()) << resp.body;
  EXPECT_NE(resp.body.find("\"code\":"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("\"tenant\":\"default\""), std::string::npos);
  // The failed query still consumed an admission and was released.
  std::vector<TenantStats> stats = door.tenants().Snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].queries_error, 1u);
  EXPECT_EQ(stats[0].active, 0);
}

TEST(FrontDoorServeTest, DeadlineZeroMeansNoDeadline) {
  QueryFrontDoor door(Retail());
  obs::HttpResponse resp = door.ServeRequest(Post(
      R"j({"query":"SELECT sum(amount) BY CUBE(city, store)","deadline_ms":0})j"));
  EXPECT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("\"outcome\":\"ok\""), std::string::npos);
}

// ---------------------------------------------------------- the 429 path

TEST(FrontDoorAdmissionTest, RateLimitedTenantGets429WithRetryAfter) {
  FrontDoorOptions opt;
  opt.default_quota.rate_qps = 1;
  opt.default_quota.burst = 1;
  QueryFrontDoor door(Retail(), opt);
  const std::string body = R"({"query":"SELECT sum(amount) BY city"})";
  EXPECT_EQ(door.ServeRequest(Post(body)).status, 200);
  obs::HttpResponse limited = door.ServeRequest(Post(body));
  EXPECT_EQ(limited.status, 429);
  EXPECT_TRUE(statcube::JsonChecker(limited.body).Valid()) << limited.body;
  EXPECT_NE(limited.body.find("\"reason\":\"rate\""), std::string::npos)
      << limited.body;
  EXPECT_NE(limited.body.find("\"retry_after_ms\":"), std::string::npos);
  EXPECT_NE(limited.body.find("\"tenant\":\"default\""), std::string::npos);
  // Whole seconds, rounded up: with qps=1 the hint is <= 1000 ms -> "1".
  EXPECT_EQ(Header(limited, "Retry-After"), "1");
  std::vector<TenantStats> stats = door.tenants().Snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].rejected_rate, 1u);
}

TEST(FrontDoorAdmissionTest, ConcurrencyRejectionSuggestsOneSecond) {
  FrontDoorOptions opt;
  opt.default_quota.max_concurrent = 1;
  QueryFrontDoor door(Retail(), opt);
  // Occupy the tenant's single slot by admitting directly (ServeRequest is
  // synchronous, so two in-flight requests need this back door).
  ASSERT_TRUE(door.tenants().Admit("default").ok());
  obs::HttpResponse resp = door.ServeRequest(
      Post(R"({"query":"SELECT sum(amount) BY city"})"));
  EXPECT_EQ(resp.status, 429);
  EXPECT_NE(resp.body.find("\"reason\":\"concurrency\""), std::string::npos);
  // The concurrency gate has no refill clock: the header still suggests 1 s.
  EXPECT_EQ(Header(resp, "Retry-After"), "1");
  door.tenants().Release("default", 0, true);
}

// ---------------------------------------------------------- the 503 path

TEST(FrontDoorShedTest, FullQueueSheds503WithRetryAfter) {
  FrontDoorOptions opt;
  opt.queue.max_active = 1;
  opt.queue.max_queued = 0;  // shed as soon as the slot is busy
  QueryFrontDoor door(Retail(), opt);
  // Occupy the single execution slot.
  ASSERT_EQ(door.queue().Enter(), EnterOutcome::kAdmitted);
  obs::HttpResponse resp = door.ServeRequest(
      Post(R"({"query":"SELECT sum(amount) BY city","tenant":"t"})"));
  EXPECT_EQ(resp.status, 503);
  EXPECT_TRUE(statcube::JsonChecker(resp.body).Valid()) << resp.body;
  EXPECT_NE(resp.body.find("admission queue full"), std::string::npos);
  EXPECT_EQ(Header(resp, "Retry-After"), "1");
  door.queue().Exit();

  // The shed is attributed to the tenant, and the admission was released.
  std::vector<TenantStats> stats = door.tenants().Snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].shed, 1u);
  EXPECT_EQ(stats[0].active, 0);
  EXPECT_EQ(stats[0].queries_error, 1u);
  EXPECT_EQ(door.queue().sheds(), 1u);

  // Slot free again: the same request now succeeds.
  EXPECT_EQ(door
                .ServeRequest(Post(
                    R"({"query":"SELECT sum(amount) BY city","tenant":"t"})"))
                .status,
            200);
}

// --------------------------------------------------------- /statusz fragment

TEST(FrontDoorStatuszTest, SectionListsTenantsAndQueue) {
  QueryFrontDoor door(Retail());
  (void)door.ServeRequest(
      Post(R"({"query":"SELECT sum(amount) BY city","tenant":"acme"})"));
  std::string html = door.StatuszSection();
  EXPECT_NE(html.find("queue: 0 active / 0 queued"), std::string::npos)
      << html;
  EXPECT_NE(html.find("acme"), std::string::npos);
  EXPECT_NE(html.find("/profiles?tenant=acme"), std::string::npos);
}

// -------------------------------------------------------- socket-level tests

// One HTTP/1.1 request with an optional body against localhost:port;
// returns the raw response or "" on connect/IO failure. obs_serving_test's
// HttpGet cannot send bodies, which POST /query needs.
std::string HttpRequestRaw(uint16_t port, const std::string& method,
                           const std::string& target,
                           const std::string& body) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return "";
  }
  std::string req = method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n";
  if (!body.empty())
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  req += "Connection: close\r\n\r\n" + body;
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return "";
    }
    off += size_t(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, size_t(n));
  close(fd);
  return resp;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

class FrontDoorSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::StatsServerOptions opt;
    opt.port = 0;  // kernel-assigned
    opt.max_body_bytes = 1024;  // small cap to exercise 413 cheaply
    server_ = std::make_unique<obs::StatsServer>(opt);
    door_ = std::make_unique<QueryFrontDoor>(Retail());
    door_->Register(*server_);
    auto s = server_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override { server_->Stop(); }

  std::unique_ptr<obs::StatsServer> server_;
  std::unique_ptr<QueryFrontDoor> door_;
};

TEST_F(FrontDoorSocketTest, PostQueryServesJsonOverTheWire) {
  std::string resp = HttpRequestRaw(
      server_->port(), "POST", "/query",
      R"({"query":"SELECT sum(amount) BY city","tenant":"wire"})");
  EXPECT_NE(resp.find("200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  std::string body = Body(resp);
  EXPECT_TRUE(statcube::JsonChecker(body).Valid()) << body;
  EXPECT_NE(body.find("\"tenant\":\"wire\""), std::string::npos);
  EXPECT_NE(body.find("\"outcome\":\"ok\""), std::string::npos);
}

TEST_F(FrontDoorSocketTest, GetQueryIs405) {
  std::string resp = HttpRequestRaw(server_->port(), "GET", "/query", "");
  EXPECT_NE(resp.find("405"), std::string::npos) << resp;
}

TEST_F(FrontDoorSocketTest, OversizedBodyIs413) {
  // 2 KiB body against a 1 KiB cap: refused before the query layer runs.
  std::string huge = R"({"query":")" + std::string(2048, 'x') + "\"}";
  std::string resp = HttpRequestRaw(server_->port(), "POST", "/query", huge);
  EXPECT_NE(resp.find("413"), std::string::npos) << resp;
  EXPECT_EQ(door_->requests(), 0u);  // never reached the front door
}

TEST_F(FrontDoorSocketTest, RetryAfterHeaderReachesTheWire) {
  // Exhaust a 1-token bucket, then read the header off the raw response.
  TenantQuota q;
  q.rate_qps = 1;
  q.burst = 1;
  door_->tenants().Configure("wire", q);
  const std::string body =
      R"({"query":"SELECT sum(amount) BY city","tenant":"wire"})";
  std::string first = HttpRequestRaw(server_->port(), "POST", "/query", body);
  EXPECT_NE(first.find("200"), std::string::npos) << first;
  std::string second = HttpRequestRaw(server_->port(), "POST", "/query", body);
  EXPECT_NE(second.find("429"), std::string::npos) << second;
  EXPECT_NE(second.find("Retry-After: 1\r\n"), std::string::npos) << second;
}

TEST_F(FrontDoorSocketTest, StatuszShowsTenantSection) {
  (void)HttpRequestRaw(
      server_->port(), "POST", "/query",
      R"({"query":"SELECT sum(amount) BY city","tenant":"seen"})");
  std::string resp = HttpRequestRaw(server_->port(), "GET", "/statusz", "");
  EXPECT_NE(resp.find("tenants"), std::string::npos);
  EXPECT_NE(resp.find("seen"), std::string::npos);
}

}  // namespace
}  // namespace statcube::serve
