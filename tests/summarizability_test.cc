// Tests for the summarizability checker (paper §3.3.2, [LS97]): each
// constructed violation is flagged, and only those.

#include "statcube/core/summarizability.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

// HMO-style object: physician counts by specialty (non-strict), procedure
// costs by disease, populations over time.
StatisticalObject MakeHmo() {
  StatisticalObject obj("hmo");

  Dimension disease("disease");
  ClassificationHierarchy dh("disease_cat", {"disease", "disease_category"});
  EXPECT_TRUE(dh.Link(0, Value("lung cancer"), Value("cancer")).ok());
  EXPECT_TRUE(dh.Link(0, Value("lung cancer"), Value("respiratory")).ok());
  EXPECT_TRUE(dh.Link(0, Value("leukemia"), Value("cancer")).ok());
  EXPECT_TRUE(dh.Link(0, Value("asthma"), Value("respiratory")).ok());
  dh.DeclareComplete(0, "cost");
  disease.AddHierarchy(dh);
  EXPECT_TRUE(obj.AddDimension(disease).ok());

  Dimension region("region", DimensionKind::kSpatial);
  ClassificationHierarchy rh("geo", {"city", "state"});
  EXPECT_TRUE(rh.Link(0, Value("sf"), Value("CA")).ok());
  EXPECT_TRUE(rh.Link(0, Value("la"), Value("CA")).ok());
  EXPECT_TRUE(rh.Link(0, Value("reno"), Value("NV")).ok());
  region.AddHierarchy(rh);
  EXPECT_TRUE(obj.AddDimension(region).ok());

  Dimension month("month", DimensionKind::kTemporal);
  EXPECT_TRUE(obj.AddDimension(month).ok());

  EXPECT_TRUE(obj.AddMeasure({"cost", "dollars", MeasureType::kFlow,
                              AggFn::kSum}).ok());
  EXPECT_TRUE(obj.AddMeasure({"population", "", MeasureType::kStock,
                              AggFn::kSum}).ok());
  EXPECT_TRUE(obj.AddMeasure({"avg_income", "dollars",
                              MeasureType::kValuePerUnit, AggFn::kAvg}).ok());
  return obj;
}

TEST(SummarizabilityTest, NonStrictStepFlagged) {
  auto obj = MakeHmo();
  auto rep = CheckRollup(obj, "disease", "disease_cat", 0, 1, "cost",
                         AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep->summarizable);
  ASSERT_FALSE(rep->violations.empty());
  EXPECT_NE(rep->violations[0].find("non-strict"), std::string::npos);
  EXPECT_NE(rep->violations[0].find("lung cancer"), std::string::npos);
  EXPECT_EQ(rep->ToStatus().code(), StatusCode::kNotSummarizable);
}

TEST(SummarizabilityTest, MinMaxTolerateNonStrict) {
  auto obj = MakeHmo();
  auto rep =
      CheckRollup(obj, "disease", "disease_cat", 0, 1, "cost", AggFn::kMax);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->summarizable) << rep->ToStatus().ToString();
}

TEST(SummarizabilityTest, UndeclaredCompletenessFlagged) {
  auto obj = MakeHmo();
  // The geo step never declared complete for population: cities do not
  // exhaust a state's population.
  auto rep = CheckRollup(obj, "region", "geo", 0, 1, "population", AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep->summarizable);
  bool mentions_complete = false;
  for (const auto& v : rep->violations)
    if (v.find("complete") != std::string::npos) mentions_complete = true;
  EXPECT_TRUE(mentions_complete);
}

TEST(SummarizabilityTest, DeclaredCompletenessClearsViolation) {
  auto obj = MakeHmo();
  auto* region = *obj.MutableDimensionNamed("region");
  region->mutable_hierarchies()[0].DeclareComplete(0, "cost");
  auto rep = CheckRollup(obj, "region", "geo", 0, 1, "cost", AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->summarizable) << rep->ToStatus().ToString();
}

TEST(SummarizabilityTest, NonCoveringStepFlagged) {
  auto obj = MakeHmo();
  auto* region = *obj.MutableDimensionNamed("region");
  auto& geo = region->mutable_hierarchies()[0];
  geo.DeclareComplete(0, "cost");
  ASSERT_TRUE(geo.AddValue(0, Value("unmapped_city")).ok());
  auto rep = CheckRollup(obj, "region", "geo", 0, 1, "cost", AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep->summarizable);
  bool mentions_covering = false;
  for (const auto& v : rep->violations)
    if (v.find("covering") != std::string::npos) mentions_covering = true;
  EXPECT_TRUE(mentions_covering);
}

TEST(SummarizabilityTest, StockOverTimeFlagged) {
  auto obj = MakeHmo();
  // "it is meaningless to add populations over time"
  auto rep = CheckProjectOut(obj, "month", "population", AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep->summarizable);
  EXPECT_NE(rep->violations[0].find("stock"), std::string::npos);
  // ... but averaging over time is fine.
  rep = CheckProjectOut(obj, "month", "population", AggFn::kAvg);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->summarizable);
  // ... and adding accident-like flows over time is fine.
  rep = CheckProjectOut(obj, "month", "cost", AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->summarizable);
}

TEST(SummarizabilityTest, StockOverNonTemporalOk) {
  auto obj = MakeHmo();
  auto rep = CheckProjectOut(obj, "region", "population", AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->summarizable);
}

TEST(SummarizabilityTest, ValuePerUnitNeverSums) {
  auto obj = MakeHmo();
  for (const char* dim : {"region", "month", "disease"}) {
    auto rep = CheckProjectOut(obj, dim, "avg_income", AggFn::kSum);
    ASSERT_TRUE(rep.ok());
    EXPECT_FALSE(rep->summarizable) << dim;
  }
  auto rep = CheckProjectOut(obj, "region", "avg_income", AggFn::kAvg);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->summarizable);
}

TEST(SummarizabilityTest, MultipleViolationsAllReported) {
  auto obj = MakeHmo();
  // Non-strict AND not declared complete for population AND stock measure
  // (but disease is not temporal, so type is OK for sum).
  auto rep = CheckRollup(obj, "disease", "disease_cat", 0, 1, "population",
                         AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep->summarizable);
  EXPECT_GE(rep->violations.size(), 2u);
}

TEST(SummarizabilityTest, ArgumentValidation) {
  auto obj = MakeHmo();
  EXPECT_FALSE(CheckRollup(obj, "ghost", "geo", 0, 1, "cost", AggFn::kSum).ok());
  EXPECT_FALSE(
      CheckRollup(obj, "region", "ghost", 0, 1, "cost", AggFn::kSum).ok());
  EXPECT_FALSE(
      CheckRollup(obj, "region", "geo", 0, 1, "ghost", AggFn::kSum).ok());
  EXPECT_FALSE(
      CheckRollup(obj, "region", "geo", 1, 1, "cost", AggFn::kSum).ok());
  EXPECT_FALSE(
      CheckRollup(obj, "region", "geo", 0, 5, "cost", AggFn::kSum).ok());
}

}  // namespace
}  // namespace statcube
