// Tests for run-length encoding.

#include "statcube/storage/rle.h"

#include <gtest/gtest.h>

#include "statcube/common/rng.h"

namespace statcube {
namespace {

TEST(RleTest, MergesAdjacentRuns) {
  RleVector v;
  v.PushBack(5);
  v.PushBack(5);
  v.PushBack(7);
  v.PushRun(7, 3);
  ASSERT_EQ(v.runs().size(), 2u);
  EXPECT_EQ(v.runs()[0], (RleRun{5, 2}));
  EXPECT_EQ(v.runs()[1], (RleRun{7, 4}));
  EXPECT_EQ(v.size(), 6u);
}

TEST(RleTest, GetByPosition) {
  RleVector v;
  v.PushRun(1, 10);
  v.PushRun(2, 1);
  v.PushRun(3, 5);
  EXPECT_EQ(v.Get(0), 1u);
  EXPECT_EQ(v.Get(9), 1u);
  EXPECT_EQ(v.Get(10), 2u);
  EXPECT_EQ(v.Get(11), 3u);
  EXPECT_EQ(v.Get(15), 3u);
}

TEST(RleTest, DecodeRoundTrip) {
  Rng rng(3);
  std::vector<uint64_t> ref;
  RleVector v;
  uint64_t cur = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.05)) cur = rng.Uniform(8);
    ref.push_back(cur);
    v.PushBack(cur);
  }
  EXPECT_EQ(v.Decode(), ref);
  for (size_t i = 0; i < ref.size(); i += 37) EXPECT_EQ(v.Get(i), ref[i]);
}

TEST(RleTest, CompressesLongRuns) {
  RleVector v;
  for (int i = 0; i < 100000; ++i) v.PushBack(uint64_t(i / 10000));
  EXPECT_EQ(v.runs().size(), 10u);
  EXPECT_LT(v.ByteSize(), 100000u * 8 / 100);
}

TEST(RleTest, EmptyPushRunIgnored) {
  RleVector v;
  v.PushRun(9, 0);
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.runs().empty());
}

TEST(RleTest, GetAfterIncrementalAppends) {
  // Prefix cache must rebuild when runs change.
  RleVector v;
  v.PushRun(1, 3);
  EXPECT_EQ(v.Get(2), 1u);
  v.PushRun(2, 3);
  EXPECT_EQ(v.Get(4), 2u);
  v.PushBack(2);
  EXPECT_EQ(v.Get(6), 2u);
}

}  // namespace
}  // namespace statcube
