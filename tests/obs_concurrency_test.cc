// Concurrency hammering for the serving layer, designed to run under TSan
// (see the thread-sanitize CI job): writer threads pound counters,
// histograms, the flight recorder, and the structured log while scraper
// threads loop over /metrics and /profiles through a real socket. Asserts
// no torn snapshots — counter reads observed by the scraper are monotone
// run-to-run — and that final totals account for every write.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.h"
#include "statcube/obs/exporter.h"
#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/http_server.h"
#include "statcube/obs/log.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_profile.h"

namespace statcube {
namespace {

std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return "";
  }
  std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return "";
    }
    off += size_t(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, size_t(n));
  close(fd);
  return resp;
}

// Extracts `name value` from a Prometheus body; -1 if absent.
int64_t MetricValue(const std::string& body, const std::string& name) {
  size_t pos = 0;
  while ((pos = body.find(name + " ", pos)) != std::string::npos) {
    // Must be at line start to avoid matching a name prefix.
    if (pos != 0 && body[pos - 1] != '\n') {
      ++pos;
      continue;
    }
    return atoll(body.c_str() + pos + name.size() + 1);
  }
  return -1;
}

TEST(ObsConcurrencyTest, WritersAndScrapersDontTearSnapshots) {
  constexpr int kWriters = 4;
  constexpr int kScrapers = 2;
  constexpr int kIncrementsPerWriter = 20000;
  constexpr int kProfilesPerWriter = 200;

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  obs::EnabledScope on(true);
  obs::FlightRecorder recorder(64);
  recorder.SetSlowQueryThresholdUs(0);

  // Quiet sink: the log must survive concurrent emission, but stderr spam
  // helps nobody.
  auto prev_sink = obs::SetLogSink([](const std::string&) {});
  obs::SetLogRateLimit(1e6, 1e6);

  obs::StatsServerOptions opt;
  opt.port = 0;
  opt.num_workers = 2;
  obs::StatsServer server(opt);
  // /recorder serves the local (test-owned) recorder so the scrape hits the
  // same object the writers pound.
  server.Handle("/recorder", [&recorder](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = recorder.ToJson();
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::atomic<int> writers_done{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      obs::Counter& hammered = reg.GetCounter("statcube.test.hammered");
      obs::Histogram& lat =
          reg.GetHistogram("statcube.test.conc_lat", {10, 100, 1000});
      for (int i = 0; i < kIncrementsPerWriter; ++i) {
        hammered.Add(1);
        lat.Observe(double(i % 2000));
        if (i % (kIncrementsPerWriter / kProfilesPerWriter) == 0) {
          obs::ProfileScope scope;
          obs::RecordBackend(w % 2 == 0 ? "molap" : "rolap", 1, 4096);
          recorder.Record(scope.Take(), "hammer query " + std::to_string(w));
          obs::LogEvent(obs::LogLevel::kInfo, "hammer")
              .Int("writer", w)
              .Int("i", i)
              .Emit();
        }
      }
      writers_done.fetch_add(1);
    });
  }

  // Scrapers loop until writers finish; every observed value of the
  // hammered counter must be monotone (no torn/backwards reads) and every
  // /recorder body must be valid JSON.
  std::vector<std::thread> scrapers;
  std::atomic<bool> failed{false};
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&] {
      int64_t last_seen = -1;
      while (!done.load()) {
        std::string metrics = HttpGet(server.port(), "/metrics");
        if (!metrics.empty()) {
          int64_t v = MetricValue(metrics, "statcube_test_hammered");
          if (v >= 0) {
            if (v < last_seen) failed.store(true);
            last_seen = v;
          }
        }
        std::string rec_body = HttpGet(server.port(), "/recorder");
        size_t body_at = rec_body.find("\r\n\r\n");
        if (body_at != std::string::npos &&
            !JsonChecker(rec_body.substr(body_at + 4)).Valid())
          failed.store(true);
      }
    });
  }

  for (std::thread& t : writers) t.join();
  done.store(true);
  for (std::thread& t : scrapers) t.join();

  EXPECT_FALSE(failed.load()) << "torn snapshot observed";

  // Final accounting: nothing lost under contention.
  EXPECT_EQ(reg.GetCounter("statcube.test.hammered").Value(),
            uint64_t(kWriters) * kIncrementsPerWriter);
  obs::Histogram& lat =
      reg.GetHistogram("statcube.test.conc_lat", {10, 100, 1000});
  EXPECT_EQ(lat.TotalCount(), uint64_t(kWriters) * kIncrementsPerWriter);
  uint64_t bucket_sum = 0;
  for (size_t i = 0; i <= lat.bounds().size(); ++i)
    bucket_sum += lat.BucketCount(i);
  EXPECT_EQ(bucket_sum, lat.TotalCount());
  EXPECT_EQ(recorder.TotalRecorded(),
            uint64_t(kWriters) * kProfilesPerWriter);
  // One final scrape after quiescence parses and carries the exact totals.
  std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(MetricValue(metrics, "statcube_test_hammered"),
            int64_t(kWriters) * kIncrementsPerWriter);

  server.Stop();
  obs::SetLogRateLimit(100, 50);
  obs::SetLogSink(std::move(prev_sink));
  reg.Reset();
}

// Parallel ProfileScopes on different threads stay isolated (thread-local
// active profile) while feeding one shared recorder.
TEST(ObsConcurrencyTest, ParallelProfileScopesStayThreadLocal) {
  obs::EnabledScope on(true);
  obs::FlightRecorder recorder(256);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<bool> mixed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string mine = "backend" + std::to_string(t);
      for (int i = 0; i < 100; ++i) {
        obs::ProfileScope scope;
        obs::RecordBackend(mine, 1, 1);
        obs::QueryProfile p = scope.Take();
        if (p.backend != mine) mixed.store(true);
        recorder.Record(p, mine);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_FALSE(mixed.load()) << "profile leaked across threads";
  EXPECT_EQ(recorder.TotalRecorded(), uint64_t(kThreads) * 100);
  // Ids densely cover [1, total] — no duplicates under contention.
  auto entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), 256u);
  for (size_t i = 1; i < entries.size(); ++i)
    EXPECT_EQ(entries[i].id, entries[i - 1].id + 1);
}

}  // namespace
}  // namespace statcube
