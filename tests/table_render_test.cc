// Tests for the 2-D statistical table renderer (Figures 1 and 9).

#include "statcube/core/table_render.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

// A small version of the paper's Figure 1: employment by sex by year by
// profession, with professional class above profession.
StatisticalObject MakeEmployment() {
  StatisticalObject obj("employment_in_california");
  EXPECT_TRUE(obj.AddDimension(Dimension("sex")).ok());
  EXPECT_TRUE(
      obj.AddDimension(Dimension("year", DimensionKind::kTemporal)).ok());
  Dimension prof("profession");
  ClassificationHierarchy h("by_class", {"profession", "professional_class"});
  EXPECT_TRUE(h.Link(0, Value("chemical eng"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("civil eng"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("junior sec"), Value("secretary")).ok());
  prof.AddHierarchy(h);
  EXPECT_TRUE(obj.AddDimension(prof).ok());
  EXPECT_TRUE(
      obj.AddMeasure({"employment", "", MeasureType::kStock, AggFn::kSum}).ok());

  int64_t v = 100;
  for (const char* sex : {"M", "F"})
    for (int year : {1991, 1992})
      for (const char* p : {"chemical eng", "civil eng", "junior sec"})
        EXPECT_TRUE(
            obj.AddCell({Value(sex), Value(year), Value(p)}, {Value(v += 10)})
                .ok());
  return obj;
}

TEST(TableRenderTest, BasicLayout) {
  auto obj = MakeEmployment();
  Render2DOptions opt;
  opt.row_dims = {"sex", "year"};
  opt.col_dims = {"profession"};
  opt.measure = "employment";
  auto out = Render2D(obj, opt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // All professions appear as columns; sexes/years as rows.
  EXPECT_NE(out->find("chemical eng"), std::string::npos);
  EXPECT_NE(out->find("junior sec"), std::string::npos);
  EXPECT_NE(out->find("1991"), std::string::npos);
  EXPECT_NE(out->find("110"), std::string::npos);  // first cell value
}

TEST(TableRenderTest, NestedHierarchyHeader) {
  auto obj = MakeEmployment();
  Render2DOptions opt;
  opt.row_dims = {"sex", "year"};
  opt.col_dims = {"profession"};
  opt.measure = "employment";
  opt.nest_hierarchy = "by_class";
  auto out = Render2D(obj, opt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("engineer"), std::string::npos);
  EXPECT_NE(out->find("secretary"), std::string::npos);
}

TEST(TableRenderTest, MarginalsMatchSums) {
  auto obj = MakeEmployment();
  Render2DOptions opt;
  opt.row_dims = {"sex", "year"};
  opt.col_dims = {"profession"};
  opt.measure = "employment";
  opt.marginals = true;
  auto out = Render2D(obj, opt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("total"), std::string::npos);
  // Grand total = sum of 110..220 step 10 = 12 values = 1,980.
  EXPECT_NE(out->find("1,980"), std::string::npos);
}

TEST(TableRenderTest, MarginalsWithNestedHierarchy) {
  auto obj = MakeEmployment();
  Render2DOptions opt;
  opt.row_dims = {"sex"};
  opt.col_dims = {"profession"};
  opt.measure = "employment";
  opt.marginals = true;
  opt.nest_hierarchy = "by_class";
  auto out = Render2D(obj, opt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Per-parent totals plus the grand column and total row all render.
  EXPECT_NE(out->find("engineer"), std::string::npos);
  EXPECT_NE(out->find("total"), std::string::npos);
  EXPECT_NE(out->find("1,980"), std::string::npos);
}

TEST(TableRenderTest, RejectsNonStrictNesting) {
  StatisticalObject obj("hmo");
  Dimension disease("disease");
  ClassificationHierarchy dh("cat", {"disease", "category"});
  EXPECT_TRUE(dh.Link(0, Value("lung cancer"), Value("cancer")).ok());
  EXPECT_TRUE(dh.Link(0, Value("lung cancer"), Value("respiratory")).ok());
  disease.AddHierarchy(dh);
  ASSERT_TRUE(obj.AddDimension(disease).ok());
  ASSERT_TRUE(obj.AddDimension(Dimension("city")).ok());
  ASSERT_TRUE(
      obj.AddMeasure({"cost", "dollars", MeasureType::kFlow, AggFn::kSum}).ok());
  ASSERT_TRUE(
      obj.AddCell({Value("lung cancer"), Value("sf")}, {Value(5.0)}).ok());

  Render2DOptions opt;
  opt.row_dims = {"city"};
  opt.col_dims = {"disease"};
  opt.measure = "cost";
  opt.nest_hierarchy = "cat";
  auto out = Render2D(obj, opt);
  EXPECT_EQ(out.status().code(), StatusCode::kNotSummarizable);
}

TEST(TableRenderTest, ValidatesArguments) {
  auto obj = MakeEmployment();
  Render2DOptions opt;
  opt.measure = "employment";
  EXPECT_FALSE(Render2D(obj, opt).ok());  // no dims
  opt.row_dims = {"sex"};
  opt.col_dims = {"profession"};
  opt.measure = "ghost";
  EXPECT_FALSE(Render2D(obj, opt).ok());
  opt.measure = "employment";
  opt.nest_hierarchy = "ghost";
  EXPECT_FALSE(Render2D(obj, opt).ok());
}

TEST(TableRenderTest, EmptyCellsRenderAsDot) {
  StatisticalObject obj("sparse");
  ASSERT_TRUE(obj.AddDimension(Dimension("a")).ok());
  ASSERT_TRUE(obj.AddDimension(Dimension("b")).ok());
  ASSERT_TRUE(
      obj.AddMeasure({"m", "", MeasureType::kFlow, AggFn::kSum}).ok());
  ASSERT_TRUE(obj.AddCell({Value("a1"), Value("b1")}, {Value(1.0)}).ok());
  ASSERT_TRUE(obj.AddCell({Value("a2"), Value("b2")}, {Value(2.0)}).ok());
  Render2DOptions opt;
  opt.row_dims = {"a"};
  opt.col_dims = {"b"};
  opt.measure = "m";
  auto out = Render2D(obj, opt);
  ASSERT_TRUE(out.ok());
  // (a1,b2) and (a2,b1) are empty.
  EXPECT_NE(out->find("."), std::string::npos);
}

}  // namespace
}  // namespace statcube
