// Tests for classification structures (paper §4.2, Figure 8): strictness,
// covering, completeness declarations, ID dependency, value properties,
// ancestors/descendants.

#include "statcube/core/classification.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

// The paper's Figure 1 structure: profession -> professional class.
ClassificationHierarchy MakeProfessions() {
  ClassificationHierarchy h("by_class", {"profession", "professional_class"});
  EXPECT_TRUE(h.Link(0, Value("chemical engineer"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("civil engineer"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("junior secretary"), Value("secretary")).ok());
  EXPECT_TRUE(h.Link(0, Value("executive secretary"), Value("secretary")).ok());
  EXPECT_TRUE(h.Link(0, Value("elementary teacher"), Value("teacher")).ok());
  EXPECT_TRUE(h.Link(0, Value("high school teacher"), Value("teacher")).ok());
  return h;
}

// The paper's §3.2(iii) HMO example: lung cancer under both cancer and
// respiratory — a non-strict structure.
ClassificationHierarchy MakeDiseases() {
  ClassificationHierarchy h("disease", {"disease", "disease_category"});
  EXPECT_TRUE(h.Link(0, Value("lung cancer"), Value("cancer")).ok());
  EXPECT_TRUE(h.Link(0, Value("lung cancer"), Value("respiratory")).ok());
  EXPECT_TRUE(h.Link(0, Value("leukemia"), Value("cancer")).ok());
  EXPECT_TRUE(h.Link(0, Value("asthma"), Value("respiratory")).ok());
  return h;
}

// The paper's §2.2 time hierarchy: day -> month -> year, ID dependent.
ClassificationHierarchy MakeTime() {
  ClassificationHierarchy h("calendar", {"day", "month", "year"});
  for (int m = 1; m <= 2; ++m)
    for (int d = 1; d <= 3; ++d) {
      std::string day = "1996-0" + std::to_string(m) + "-0" + std::to_string(d);
      std::string month = "1996-0" + std::to_string(m);
      EXPECT_TRUE(h.Link(0, Value(day), Value(month)).ok());
    }
  EXPECT_TRUE(h.Link(1, Value("1996-01"), Value("1996")).ok());
  EXPECT_TRUE(h.Link(1, Value("1996-02"), Value("1996")).ok());
  h.set_id_dependent(true);
  return h;
}

TEST(ClassificationTest, LevelsAndLookup) {
  auto h = MakeProfessions();
  EXPECT_EQ(h.num_levels(), 2u);
  auto idx = h.LevelIndex("professional_class");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(h.LevelIndex("ghost").ok());
}

TEST(ClassificationTest, ParentsAndChildren) {
  auto h = MakeProfessions();
  auto ps = h.Parents(0, Value("civil engineer"));
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0], Value("engineer"));
  auto cs = h.Children(1, Value("teacher"));
  EXPECT_EQ(cs.size(), 2u);
  EXPECT_TRUE(h.Parents(1, Value("engineer")).empty());  // top level
  EXPECT_TRUE(h.Children(0, Value("civil engineer")).empty());  // leaf
}

TEST(ClassificationTest, StrictnessDetection) {
  EXPECT_TRUE(MakeProfessions().IsStrict());
  auto d = MakeDiseases();
  EXPECT_FALSE(d.IsStrict());
  EXPECT_FALSE(d.IsStrictAt(0));
  auto multi = d.MultiParentValues(0);
  ASSERT_EQ(multi.size(), 1u);
  EXPECT_EQ(multi[0], Value("lung cancer"));
}

TEST(ClassificationTest, CoveringDetection) {
  auto h = MakeProfessions();
  EXPECT_TRUE(h.IsCoveringAt(0));
  // Register a profession with no class: not covering any more.
  ASSERT_TRUE(h.AddValue(0, Value("freelancer")).ok());
  EXPECT_FALSE(h.IsCoveringAt(0));
}

TEST(ClassificationTest, CompletenessIsDeclared) {
  auto h = MakeProfessions();
  EXPECT_FALSE(h.IsDeclaredComplete(0, "employment"));
  h.DeclareComplete(0, "employment");
  EXPECT_TRUE(h.IsDeclaredComplete(0, "employment"));
  EXPECT_FALSE(h.IsDeclaredComplete(0, "other_measure"));
  h.DeclareComplete(0, "employment", false);
  EXPECT_FALSE(h.IsDeclaredComplete(0, "employment"));
}

TEST(ClassificationTest, MultiLevelAncestors) {
  auto t = MakeTime();
  auto anc = t.Ancestors(0, Value("1996-02-03"), 2);
  ASSERT_TRUE(anc.ok());
  ASSERT_EQ(anc->size(), 1u);
  EXPECT_EQ((*anc)[0], Value("1996"));
  auto month = t.Ancestors(0, Value("1996-02-03"), 1);
  ASSERT_TRUE(month.ok());
  EXPECT_EQ((*month)[0], Value("1996-02"));
  // Ancestors of a value at its own level is itself.
  auto self = t.Ancestors(1, Value("1996-01"), 1);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ((*self)[0], Value("1996-01"));
}

TEST(ClassificationTest, AncestorsThroughNonStrictFanOut) {
  auto d = MakeDiseases();
  auto anc = d.Ancestors(0, Value("lung cancer"), 1);
  ASSERT_TRUE(anc.ok());
  EXPECT_EQ(anc->size(), 2u);
}

TEST(ClassificationTest, LeafDescendants) {
  auto t = MakeTime();
  auto leaves = t.LeafDescendants(2, Value("1996"));
  ASSERT_TRUE(leaves.ok());
  EXPECT_EQ(leaves->size(), 6u);
  auto month_leaves = t.LeafDescendants(1, Value("1996-01"));
  ASSERT_TRUE(month_leaves.ok());
  EXPECT_EQ(month_leaves->size(), 3u);
}

TEST(ClassificationTest, QualifiedIdentity) {
  auto t = MakeTime();
  auto qid = t.QualifiedIdentity(0, Value("1996-01-02"));
  ASSERT_TRUE(qid.ok());
  ASSERT_EQ(qid->size(), 3u);
  EXPECT_EQ((*qid)[0], Value("1996-01-02"));
  EXPECT_EQ((*qid)[1], Value("1996-01"));
  EXPECT_EQ((*qid)[2], Value("1996"));
  // Undefined through a non-strict structure.
  auto d = MakeDiseases();
  EXPECT_FALSE(d.QualifiedIdentity(0, Value("lung cancer")).ok());
}

TEST(ClassificationTest, ValueProperties) {
  // Figure 8 middle: the video classification with ISA properties.
  ClassificationHierarchy h("video", {"product", "category"});
  ASSERT_TRUE(h.Link(0, Value("vcr-100"), Value("home VCR")).ok());
  ASSERT_TRUE(h.Link(0, Value("cam-7"), Value("camcorder")).ok());
  ASSERT_TRUE(h.SetProperty(0, Value("vcr-100"), "brand", Value("Sony")).ok());
  ASSERT_TRUE(h.SetProperty(0, Value("cam-7"), "brand", Value("Sanyo")).ok());
  ASSERT_TRUE(
      h.SetProperty(0, Value("vcr-100"), "sound", Value("stereo")).ok());

  auto brand = h.GetProperty(0, Value("vcr-100"), "brand");
  ASSERT_TRUE(brand.ok());
  EXPECT_EQ(*brand, Value("Sony"));
  EXPECT_FALSE(h.GetProperty(0, Value("vcr-100"), "ghost").ok());
  EXPECT_FALSE(h.GetProperty(0, Value("ghost"), "brand").ok());

  auto sanyo = h.ValuesWithProperty(0, "brand", Value("Sanyo"));
  ASSERT_EQ(sanyo.size(), 1u);
  EXPECT_EQ(sanyo[0], Value("cam-7"));
}

TEST(ClassificationTest, ErrorsOnBadLevels) {
  auto h = MakeProfessions();
  EXPECT_FALSE(h.AddValue(7, Value("x")).ok());
  EXPECT_FALSE(h.Link(1, Value("engineer"), Value("super")).ok());  // at top
  EXPECT_FALSE(h.Ancestors(0, Value("civil engineer"), 5).ok());
  EXPECT_FALSE(h.Ancestors(1, Value("engineer"), 0).ok());  // downward
}

TEST(ClassificationTest, LinkIdempotent) {
  auto h = MakeProfessions();
  ASSERT_TRUE(h.Link(0, Value("civil engineer"), Value("engineer")).ok());
  EXPECT_EQ(h.Parents(0, Value("civil engineer")).size(), 1u);
  EXPECT_EQ(h.ValuesAt(1).size(), 3u);
}

}  // namespace
}  // namespace statcube
