// Tests for the pluggable cube backends: MOLAP, ROLAP, ROLAP+bitmap must
// answer identically (the §6.6 equivalence invariant).

#include "statcube/olap/backend.h"

#include <gtest/gtest.h>

#include <map>

#include "statcube/workload/retail.h"

namespace statcube {
namespace {

class BackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RetailOptions opt;
    opt.num_products = 15;
    opt.num_stores = 6;
    opt.num_days = 20;
    opt.num_rows = 3000;
    data_ = std::make_unique<RetailData>(*MakeRetailWorkload(opt));
    molap_ = MakeMolapBackend(data_->object, "amount").ValueOrDie();
    rolap_ = MakeRolapBackend(data_->object, "amount").ValueOrDie();
    indexed_ = MakeRolapBackend(data_->object, "amount",
                                {.build_bitmap_indexes = true})
                   .ValueOrDie();
  }

  std::unique_ptr<RetailData> data_;
  std::unique_ptr<CubeBackend> molap_, rolap_, indexed_;
};

TEST_F(BackendTest, Names) {
  EXPECT_EQ(molap_->name(), "molap");
  EXPECT_EQ(rolap_->name(), "rolap");
  EXPECT_EQ(indexed_->name(), "rolap+bitmap");
}

TEST_F(BackendTest, SumsAgreeAcrossBackends) {
  std::vector<std::vector<EqFilter>> cases = {
      {},
      {{"product", Value("prod1")}},
      {{"store", Value("city0/s#0")}},
      {{"product", Value("prod2")}, {"day", Value("1996-1-3")}},
      {{"product", Value("never_sold")}},
  };
  for (const auto& filters : cases) {
    auto a = molap_->Sum(filters);
    auto b = rolap_->Sum(filters);
    auto c = indexed_->Sum(filters);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_NEAR(*a, *b, 1e-6);
    EXPECT_NEAR(*a, *c, 1e-6);
  }
}

TEST_F(BackendTest, GroupBySumsAgree) {
  CubeQuery q;
  q.group_dims = {"store"};
  auto a = molap_->GroupBySum(q);
  auto b = rolap_->GroupBySum(q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // ROLAP only returns non-empty groups; MOLAP enumerates every dimension
  // value. Compare on ROLAP's groups; MOLAP's extras must be zero.
  size_t bi = 0;
  for (size_t ai = 0; ai < a->num_rows(); ++ai) {
    if (bi < b->num_rows() && a->at(ai, 0) == b->at(bi, 0)) {
      EXPECT_NEAR(a->at(ai, 1).AsDouble(), b->at(bi, 1).AsDouble(), 1e-6);
      ++bi;
    } else {
      EXPECT_DOUBLE_EQ(a->at(ai, 1).AsDouble(), 0.0)
          << a->at(ai, 0).ToString();
    }
  }
  EXPECT_EQ(bi, b->num_rows());
}

TEST_F(BackendTest, GroupByWithFilter) {
  CubeQuery q;
  q.group_dims = {"product"};
  q.filters = {{"store", Value("city1/s#0")}};
  auto a = molap_->GroupBySum(q);
  auto b = rolap_->GroupBySum(q);
  ASSERT_TRUE(a.ok() && b.ok());
  double ta = 0, tb = 0;
  for (const Row& r : a->rows()) ta += r.back().AsDouble();
  for (const Row& r : b->rows()) tb += r.back().AsDouble();
  EXPECT_NEAR(ta, tb, 1e-6);
}

TEST_F(BackendTest, TwoDimensionGroupBy) {
  CubeQuery q;
  q.group_dims = {"store", "day"};
  auto a = molap_->GroupBySum(q);
  auto b = rolap_->GroupBySum(q);
  ASSERT_TRUE(a.ok() && b.ok());
  // MOLAP enumerates the full cross product; totals must agree.
  double ta = 0, tb = 0;
  for (const Row& r : a->rows()) ta += r.back().AsDouble();
  for (const Row& r : b->rows()) tb += r.back().AsDouble();
  EXPECT_NEAR(ta, tb, 1e-6);
  EXPECT_GE(a->num_rows(), b->num_rows());
  // Spot check: every ROLAP group appears in MOLAP output with equal sum.
  std::map<Row, double> molap_groups;
  for (const Row& r : a->rows()) {
    Row key(r.begin(), r.begin() + 2);
    molap_groups[key] = r.back().AsDouble();
  }
  for (const Row& r : b->rows()) {
    Row key(r.begin(), r.begin() + 2);
    auto it = molap_groups.find(key);
    ASSERT_NE(it, molap_groups.end());
    EXPECT_NEAR(it->second, r.back().AsDouble(), 1e-6);
  }
}

TEST_F(BackendTest, EmptyGroupIsGrandTotal) {
  CubeQuery q;
  auto a = molap_->GroupBySum(q);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->num_rows(), 1u);
  auto total = molap_->Sum({});
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(a->at(0, 0).AsDouble(), *total, 1e-6);
}

TEST_F(BackendTest, BitmapIndexReadsFewerBytesThanScan) {
  rolap_->counter().Reset();
  indexed_->counter().Reset();
  (void)*rolap_->Sum({{"product", Value("prod1")}});
  (void)*indexed_->Sum({{"product", Value("prod1")}});
  EXPECT_LT(indexed_->counter().bytes_read(), rolap_->counter().bytes_read());
}

TEST_F(BackendTest, UnknownDimensionErrors) {
  EXPECT_FALSE(molap_->Sum({{"ghost", Value(1)}}).ok());
  EXPECT_FALSE(indexed_->Sum({{"ghost", Value(1)}}).ok());
  CubeQuery q;
  q.group_dims = {"ghost"};
  EXPECT_FALSE(molap_->GroupBySum(q).ok());
  EXPECT_FALSE(rolap_->GroupBySum(q).ok());
}

}  // namespace
}  // namespace statcube
