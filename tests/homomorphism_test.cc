// The completeness-by-homomorphism property suite (paper §5.5, Figure 16):
// for randomized micro-data, statistical-algebra operators on the macro-data
// produce exactly what summarizing the relationally-transformed micro-data
// produces.

#include "statcube/olap/homomorphism.h"

#include <gtest/gtest.h>

#include "statcube/common/rng.h"
#include "statcube/olap/operators.h"
#include "statcube/relational/expression.h"
#include "statcube/relational/operators.h"

namespace statcube {
namespace {

Table MakeMicro(int n, uint64_t seed) {
  Schema s;
  s.AddColumn("state", ValueType::kString);
  s.AddColumn("sex", ValueType::kString);
  s.AddColumn("age_group", ValueType::kString);
  s.AddColumn("income", ValueType::kDouble);
  Table t("people", s);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    t.AppendRowUnchecked(
        {Value("st" + std::to_string(rng.Uniform(5))),
         Value(rng.Bernoulli(0.5) ? "M" : "F"),
         Value("a" + std::to_string(rng.Uniform(4))),
         Value(double(20000 + rng.Uniform(80000)))});
  }
  return t;
}

class HomomorphismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HomomorphismTest, SSelectCommutesWithSelect) {
  Table micro = MakeMicro(2000, GetParam());
  std::vector<std::string> dims = {"state", "sex", "age_group"};
  AggSpec agg{AggFn::kSum, "income", "total_income"};

  // Left-then-bottom: relational select on micro, then summarize.
  auto pred = expr::ColumnIn(micro.schema(), "state",
                             {Value("st1"), Value("st3")});
  ASSERT_TRUE(pred.ok());
  Table micro_sel = Select(micro, *pred);
  auto bottom = SummarizeMicro(micro_sel, dims, agg);
  ASSERT_TRUE(bottom.ok());

  // Top-then-right: summarize, then S-select on macro.
  auto macro = SummarizeMicro(micro, dims, agg);
  ASSERT_TRUE(macro.ok());
  auto right = SSelect(*macro, "state", {Value("st1"), Value("st3")});
  ASSERT_TRUE(right.ok());

  auto eq = MacroDataEqual(*bottom, *right, 1e-6);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(HomomorphismTest, SProjectCommutesWithProjectOut) {
  Table micro = MakeMicro(2000, GetParam() + 100);
  AggSpec agg{AggFn::kSum, "income", "total_income"};

  // Left: drop the column from the micro-data, then summarize by the rest.
  auto bottom = SummarizeMicro(micro, {"state", "sex"}, agg);
  ASSERT_TRUE(bottom.ok());

  // Right: summarize at full granularity, then S-project age_group.
  auto macro = SummarizeMicro(micro, {"state", "sex", "age_group"}, agg);
  ASSERT_TRUE(macro.ok());
  auto right =
      SProject(*macro, "age_group", {.enforce_summarizability = false});
  ASSERT_TRUE(right.ok());

  auto eq = MacroDataEqual(*bottom, *right, 1e-6);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(HomomorphismTest, SProjectCommutesForAverage) {
  // The subtle case: averages only commute because SummarizeMicro carries
  // the count and the macro S-project forms the weighted mean.
  Table micro = MakeMicro(1500, GetParam() + 200);
  AggSpec agg{AggFn::kAvg, "income", "avg_income"};

  auto bottom = SummarizeMicro(micro, {"state"}, agg);
  ASSERT_TRUE(bottom.ok());

  auto macro = SummarizeMicro(micro, {"state", "sex", "age_group"}, agg);
  ASSERT_TRUE(macro.ok());
  auto step1 = SProject(*macro, "sex", {.enforce_summarizability = false});
  ASSERT_TRUE(step1.ok());
  auto right =
      SProject(*step1, "age_group", {.enforce_summarizability = false});
  ASSERT_TRUE(right.ok());

  auto eq = MacroDataEqual(*bottom, *right, 1e-6);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(HomomorphismTest, SUnionCommutesWithUnion) {
  Table micro_a = MakeMicro(800, GetParam() + 300);
  Table micro_b = MakeMicro(900, GetParam() + 400);
  std::vector<std::string> dims = {"state", "sex"};
  AggSpec agg{AggFn::kSum, "income", "total_income"};

  auto both = UnionAll(micro_a, micro_b);
  ASSERT_TRUE(both.ok());
  auto bottom = SummarizeMicro(*both, dims, agg);
  ASSERT_TRUE(bottom.ok());

  auto ma = SummarizeMicro(micro_a, dims, agg);
  auto mb = SummarizeMicro(micro_b, dims, agg);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  auto right = SUnion(*ma, *mb);
  ASSERT_TRUE(right.ok());

  auto eq = MacroDataEqual(*bottom, *right, 1e-6);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomomorphismTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

TEST(MacroDataEqualTest, DetectsDifferences) {
  Table micro = MakeMicro(100, 9);
  AggSpec agg{AggFn::kSum, "income", "t"};
  auto a = SummarizeMicro(micro, {"state"}, agg);
  auto b = SummarizeMicro(micro, {"sex"}, agg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto eq = MacroDataEqual(*a, *b);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
  eq = MacroDataEqual(*a, *a);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

}  // namespace
}  // namespace statcube
