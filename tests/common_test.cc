// Tests for the common kernel: string utilities, block accounting, RNG
// statistical sanity.

#include <gtest/gtest.h>

#include <cmath>

#include "statcube/common/block_counter.h"
#include "statcube/common/rng.h"
#include "statcube/common/str_util.h"

namespace statcube {
namespace {

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " --> "), "a --> b --> c");
}

TEST(StrUtilTest, Padding) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

TEST(StrUtilTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1463883), "1,463,883");
  EXPECT_EQ(WithCommas(-1234567), "-1,234,567");
}

TEST(BlockCounterTest, ChargesBytesCeiling) {
  BlockCounter c(4096);
  c.ChargeBytes(1);
  EXPECT_EQ(c.blocks_read(), 1u);
  c.ChargeBytes(4096);
  EXPECT_EQ(c.blocks_read(), 2u);
  c.ChargeBytes(4097);
  EXPECT_EQ(c.blocks_read(), 4u);
  EXPECT_EQ(c.bytes_read(), 1u + 4096 + 4097);
  c.Reset();
  EXPECT_EQ(c.blocks_read(), 0u);
}

TEST(BlockCounterTest, ChargesBlocks) {
  BlockCounter c(512);
  c.ChargeBlocks(3);
  EXPECT_EQ(c.blocks_read(), 3u);
  EXPECT_EQ(c.bytes_read(), 3u * 512);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t u = rng.Uniform(17);
    EXPECT_LT(u, 17u);
    int64_t r = rng.UniformRange(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(2);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / 100000.0, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0, sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(10.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ZipfSkew) {
  Rng rng(4);
  const int n = 50000;
  std::vector<int> counts(100, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(100, 0.8)];
  // Rank 0 must dominate and the tail must still occur.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], n / 20);
  int tail = 0;
  for (int i = 50; i < 100; ++i) tail += counts[i];
  EXPECT_GT(tail, 0);
  // theta = 0 degenerates to uniform.
  Rng u(5);
  std::vector<int> ucounts(10, 0);
  for (int i = 0; i < 10000; ++i) ++ucounts[u.Zipf(10, 0.0)];
  for (int c : ucounts) EXPECT_NEAR(double(c), 1000.0, 200.0);
}

}  // namespace
}  // namespace statcube
