// Tests for the MOLAP storage structures of §6.2–6.5: dense linearized
// arrays, header compression, chunked (subcube) arrays, extendible arrays.
// Property sweeps check all structures agree with the dense reference across
// dimension shapes and densities.

#include <gtest/gtest.h>

#include <tuple>

#include "statcube/common/rng.h"
#include "statcube/molap/chunked_array.h"
#include "statcube/molap/dense_array.h"
#include "statcube/molap/extendible_array.h"
#include "statcube/molap/header_compressed.h"

namespace statcube {
namespace {

// ---------------------------------------------------------------- Dense

TEST(DenseArrayTest, LinearizeRoundTrip) {
  DenseArray a({3, 4, 5});
  EXPECT_EQ(a.num_cells(), 60u);
  size_t expected = 0;
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 4; ++j)
      for (size_t k = 0; k < 5; ++k) {
        auto pos = a.Linearize({i, j, k});
        ASSERT_TRUE(pos.ok());
        EXPECT_EQ(*pos, expected);  // row-major order
        EXPECT_EQ(a.Delinearize(*pos), (std::vector<size_t>{i, j, k}));
        ++expected;
      }
}

TEST(DenseArrayTest, BoundsChecked) {
  DenseArray a({2, 2});
  EXPECT_FALSE(a.Linearize({2, 0}).ok());
  EXPECT_FALSE(a.Linearize({0}).ok());
  EXPECT_FALSE(a.Set({5, 5}, 1.0).ok());
  EXPECT_FALSE(a.Get({0, 9}).ok());
}

TEST(DenseArrayTest, SumRange) {
  DenseArray a({4, 4});
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 4; ++j)
      ASSERT_TRUE(a.Set({i, j}, double(i * 4 + j)).ok());
  auto s = a.SumRange({{1, 3}, {1, 3}});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 5 + 6 + 9 + 10);
  s = a.SumRange({{0, 4}, {0, 4}});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 120.0);
  s = a.SumRange({{2, 2}, {0, 4}});  // empty slab
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 0.0);
  EXPECT_FALSE(a.SumRange({{0, 9}, {0, 4}}).ok());
}

TEST(DenseArrayTest, Density) {
  DenseArray a({10});
  ASSERT_TRUE(a.Set({3}, 5.0).ok());
  ASSERT_TRUE(a.Set({7}, 1.0).ok());
  EXPECT_DOUBLE_EQ(a.Density(), 0.2);
}

// ------------------------------------------------------ Header compression

TEST(HeaderCompressedTest, Figure21Example) {
  // The paper's Figure 21 sequence: values, nulls, value, nulls...
  std::vector<double> cells = {30173, 13457, 0, 0, 14362, 0, 0};
  HeaderCompressedArray h(cells);
  EXPECT_EQ(h.logical_size(), 7u);
  EXPECT_EQ(h.stored_count(), 3u);
  EXPECT_EQ(h.num_runs(), 2u);
  for (size_t i = 0; i < cells.size(); ++i) {
    auto v = h.Get(i);
    ASSERT_TRUE(v.ok());
    EXPECT_DOUBLE_EQ(*v, cells[i]) << i;
  }
  // Inverse mapping: stored index -> logical position.
  auto p = h.LogicalPositionOf(0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 0u);
  p = h.LogicalPositionOf(2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 4u);
  EXPECT_FALSE(h.LogicalPositionOf(3).ok());
  EXPECT_FALSE(h.Get(7).ok());
}

TEST(HeaderCompressedTest, AllNull) {
  HeaderCompressedArray h(std::vector<double>(100, 0.0));
  EXPECT_EQ(h.stored_count(), 0u);
  auto v = h.Get(50);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 0.0);
}

TEST(HeaderCompressedTest, NoNulls) {
  std::vector<double> cells;
  for (int i = 1; i <= 100; ++i) cells.push_back(double(i));
  HeaderCompressedArray h(cells);
  EXPECT_EQ(h.num_runs(), 1u);
  EXPECT_EQ(h.stored_count(), 100u);
  auto s = h.SumPositions(0, 100);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 5050.0);
}

TEST(HeaderCompressedTest, CustomNullValue) {
  std::vector<double> cells = {-1, 5, -1, 7};
  HeaderCompressedArray h(cells, -1);
  EXPECT_EQ(h.stored_count(), 2u);
  auto v = h.Get(0);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, -1.0);
  v = h.Get(3);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 7.0);
}

class HeaderCompressedSweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(HeaderCompressedSweep, RandomRoundTripAndRangeSums) {
  auto [density, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> cells(4096);
  for (auto& c : cells)
    c = rng.Bernoulli(density) ? double(1 + rng.Uniform(1000)) : 0.0;
  HeaderCompressedArray h(cells);

  // Round trip every position.
  for (size_t i = 0; i < cells.size(); ++i) {
    auto v = h.Get(i);
    ASSERT_TRUE(v.ok());
    ASSERT_DOUBLE_EQ(*v, cells[i]) << i;
  }
  // Inverse mapping is consistent with forward.
  for (uint64_t s = 0; s < h.stored_count(); s += 17) {
    auto pos = h.LogicalPositionOf(s);
    ASSERT_TRUE(pos.ok());
    auto v = h.Get(*pos);
    ASSERT_TRUE(v.ok());
    EXPECT_NE(*v, 0.0);
  }
  // Random range sums match the dense reference.
  for (int trial = 0; trial < 30; ++trial) {
    uint64_t a = rng.Uniform(cells.size());
    uint64_t b = rng.Uniform(cells.size());
    if (a > b) std::swap(a, b);
    double ref = 0;
    for (uint64_t i = a; i < b; ++i) ref += cells[i];
    auto s = h.SumPositions(a, b);
    ASSERT_TRUE(s.ok());
    EXPECT_DOUBLE_EQ(*s, ref) << "[" << a << "," << b << ")";
  }
  // Sparse inputs must actually compress.
  if (density <= 0.1) {
    EXPECT_GT(h.CompressionRatio(), 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, HeaderCompressedSweep,
    ::testing::Values(std::make_tuple(0.01, 1ull), std::make_tuple(0.05, 2ull),
                      std::make_tuple(0.1, 3ull), std::make_tuple(0.5, 4ull),
                      std::make_tuple(0.9, 5ull)));

// --------------------------------------------------------------- Chunked

class ChunkedSweep : public ::testing::TestWithParam<
                         std::tuple<std::vector<size_t>, std::vector<size_t>>> {};

TEST_P(ChunkedSweep, AgreesWithDense) {
  auto [shape, chunk_shape] = GetParam();
  DenseArray dense(shape);
  ChunkedArray chunked(shape, chunk_shape);
  Rng rng(99);
  size_t ndims = shape.size();
  // Fill both identically.
  std::vector<size_t> coord(ndims);
  for (int n = 0; n < 500; ++n) {
    for (size_t i = 0; i < ndims; ++i) coord[i] = rng.Uniform(shape[i]);
    double v = double(rng.Uniform(100));
    ASSERT_TRUE(dense.Set(coord, v).ok());
    ASSERT_TRUE(chunked.Set(coord, v).ok());
  }
  // Point reads agree.
  for (int n = 0; n < 100; ++n) {
    for (size_t i = 0; i < ndims; ++i) coord[i] = rng.Uniform(shape[i]);
    EXPECT_DOUBLE_EQ(*chunked.Get(coord), *dense.Get(coord));
  }
  // Range sums agree.
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<DimRange> ranges(ndims);
    for (size_t i = 0; i < ndims; ++i) {
      size_t a = rng.Uniform(shape[i] + 1), b = rng.Uniform(shape[i] + 1);
      if (a > b) std::swap(a, b);
      ranges[i] = {a, b};
    }
    auto s1 = dense.SumRange(ranges);
    auto s2 = chunked.SumRange(ranges);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    EXPECT_DOUBLE_EQ(*s2, *s1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChunkedSweep,
    ::testing::Values(
        std::make_tuple(std::vector<size_t>{16, 16},
                        std::vector<size_t>{4, 4}),
        std::make_tuple(std::vector<size_t>{17, 13},
                        std::vector<size_t>{4, 5}),  // ragged chunks
        std::make_tuple(std::vector<size_t>{8, 8, 8},
                        std::vector<size_t>{3, 3, 3}),
        std::make_tuple(std::vector<size_t>{5, 7, 9, 3},
                        std::vector<size_t>{2, 3, 4, 2}),
        std::make_tuple(std::vector<size_t>{100},
                        std::vector<size_t>{7})));

TEST(ChunkedArrayTest, ChunksOverlapped) {
  ChunkedArray a({16, 16}, {4, 4});
  EXPECT_EQ(a.num_chunks(), 16u);
  auto n = a.ChunksOverlapped({{0, 4}, {0, 4}});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  n = a.ChunksOverlapped({{3, 5}, {3, 5}});  // straddles 4 chunks
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  n = a.ChunksOverlapped({{0, 16}, {0, 16}});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 16u);
  n = a.ChunksOverlapped({{2, 2}, {0, 16}});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(ChunkedArrayTest, RangeQueryTouchesFewerBytesThanDenseScan) {
  // The Figure 23 claim: a small dice on a big cube reads only the
  // overlapping subcubes.
  std::vector<size_t> shape = {64, 64, 64};
  DenseArray dense(shape);
  ChunkedArray chunked(shape, {8, 8, 8});
  std::vector<DimRange> dice = {{8, 16}, {8, 16}, {8, 16}};
  dense.counter().Reset();
  chunked.counter().Reset();
  (void)*dense.SumRange(dice);
  (void)*chunked.SumRange(dice);
  // Dense reads 64 segments of 8 doubles (64 blocks); chunked reads exactly
  // one 8x8x8 chunk (4096 bytes = 1 block).
  EXPECT_LT(chunked.counter().blocks_read(), dense.counter().blocks_read());
}

TEST(ChunkAdvisorTest, ShapesChunksLikeTheQuery) {
  // Anisotropic queries (long in dim 0) get anisotropic chunks.
  auto advised = AdviseChunkShape({128, 128, 128}, {64, 4, 4}, 1024);
  EXPECT_GT(advised[0], advised[1]);
  EXPECT_EQ(advised[1], advised[2]);
  size_t cells = advised[0] * advised[1] * advised[2];
  EXPECT_GE(cells, 256u);
  EXPECT_LE(cells, 4096u);
}

TEST(ChunkAdvisorTest, ClampsToArrayBounds) {
  auto advised = AdviseChunkShape({8, 8}, {100, 1}, 4096);
  EXPECT_LE(advised[0], 8u);
  EXPECT_GE(advised[1], 1u);
  EXPECT_TRUE(AdviseChunkShape({}, {}, 10).empty());
  // Zero query extents are treated as 1.
  auto z = AdviseChunkShape({16, 16}, {0, 0}, 16);
  EXPECT_GE(z[0], 1u);
}

TEST(ChunkAdvisorTest, AdvisedChunksBeatSymmetricOnSkewedQueries) {
  // Queries are 32x2x2 slabs; compare chunks shaped by the advisor against
  // symmetric cubes of the same volume.
  std::vector<size_t> shape = {64, 64, 64};
  std::vector<size_t> qshape = {32, 2, 2};
  auto advised_shape = AdviseChunkShape(shape, qshape, 512);
  ChunkedArray advised(shape, advised_shape);
  ChunkedArray symmetric(shape, {8, 8, 8});  // 512 cells, cube-shaped
  Rng rng(31);
  uint64_t advised_chunks = 0, symmetric_chunks = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<DimRange> q(3);
    for (size_t i = 0; i < 3; ++i) {
      size_t lo = rng.Uniform(shape[i] - qshape[i]);
      q[i] = {lo, lo + qshape[i]};
    }
    advised_chunks += *advised.ChunksOverlapped(q);
    symmetric_chunks += *symmetric.ChunksOverlapped(q);
  }
  EXPECT_LT(advised_chunks, symmetric_chunks);
}

// ------------------------------------------------------------- Extendible

TEST(ExtendibleArrayTest, StartsAsOneSegment) {
  ExtendibleArray a({3, 3});
  EXPECT_EQ(a.num_segments(), 1u);
  EXPECT_EQ(a.num_cells(), 9u);
  ASSERT_TRUE(a.Set({2, 2}, 5.0).ok());
  EXPECT_DOUBLE_EQ(*a.Get({2, 2}), 5.0);
}

TEST(ExtendibleArrayTest, ExpandPreservesExistingCells) {
  ExtendibleArray a({2, 2});
  for (size_t i = 0; i < 2; ++i)
    for (size_t j = 0; j < 2; ++j)
      ASSERT_TRUE(a.Set({i, j}, double(10 * i + j)).ok());
  ASSERT_TRUE(a.Expand(0, 2).ok());  // rows 2..3
  ASSERT_TRUE(a.Expand(1, 1).ok());  // col 2
  EXPECT_EQ(a.shape(), (std::vector<size_t>{4, 3}));
  EXPECT_EQ(a.num_segments(), 3u);
  for (size_t i = 0; i < 2; ++i)
    for (size_t j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(*a.Get({i, j}), double(10 * i + j));
  // New cells are addressable and zero.
  EXPECT_DOUBLE_EQ(*a.Get({3, 2}), 0.0);
  ASSERT_TRUE(a.Set({3, 2}, 7.0).ok());
  EXPECT_DOUBLE_EQ(*a.Get({3, 2}), 7.0);
  ASSERT_TRUE(a.Set({0, 2}, 3.0).ok());  // old row, new column
  EXPECT_DOUBLE_EQ(*a.Get({0, 2}), 3.0);
}

TEST(ExtendibleArrayTest, InterleavedExpansionsAgreeWithDense) {
  // Property: after a random sequence of expansions and writes, every cell
  // matches a plain map-based reference.
  Rng rng(7);
  ExtendibleArray a({2, 2, 2});
  std::vector<size_t> shape = {2, 2, 2};
  std::map<std::vector<size_t>, double> ref;
  for (int step = 0; step < 200; ++step) {
    if (rng.Bernoulli(0.15)) {
      size_t dim = rng.Uniform(3);
      size_t by = 1 + rng.Uniform(2);
      ASSERT_TRUE(a.Expand(dim, by).ok());
      shape[dim] += by;
    } else {
      std::vector<size_t> c = {rng.Uniform(shape[0]), rng.Uniform(shape[1]),
                               rng.Uniform(shape[2])};
      double v = double(1 + rng.Uniform(1000));
      ASSERT_TRUE(a.Set(c, v).ok());
      ref[c] = v;
    }
  }
  for (const auto& [c, v] : ref) EXPECT_DOUBLE_EQ(*a.Get(c), v);
  // SumRange over the full cube equals the sum of all writes.
  double total = 0;
  for (const auto& [c, v] : ref) total += v;
  std::vector<DimRange> full = {{0, shape[0]}, {0, shape[1]}, {0, shape[2]}};
  auto s = a.SumRange(full);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, total);
}

TEST(ExtendibleArrayTest, SubRangeSumsAgainstReference) {
  Rng rng(21);
  ExtendibleArray a({3, 3});
  ASSERT_TRUE(a.Expand(0, 2).ok());
  ASSERT_TRUE(a.Expand(1, 3).ok());
  ASSERT_TRUE(a.Expand(0, 1).ok());
  std::vector<size_t> shape = {6, 6};
  std::vector<std::vector<double>> ref(6, std::vector<double>(6, 0.0));
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 6; ++j) {
      double v = double(rng.Uniform(50));
      ASSERT_TRUE(a.Set({i, j}, v).ok());
      ref[i][j] = v;
    }
  for (int trial = 0; trial < 40; ++trial) {
    size_t a0 = rng.Uniform(7), b0 = rng.Uniform(7);
    size_t a1 = rng.Uniform(7), b1 = rng.Uniform(7);
    if (a0 > b0) std::swap(a0, b0);
    if (a1 > b1) std::swap(a1, b1);
    double expect = 0;
    for (size_t i = a0; i < b0; ++i)
      for (size_t j = a1; j < b1; ++j) expect += ref[i][j];
    auto s = a.SumRange({{a0, b0}, {a1, b1}});
    ASSERT_TRUE(s.ok());
    EXPECT_DOUBLE_EQ(*s, expect) << a0 << b0 << a1 << b1;
  }
}

TEST(ExtendibleArrayTest, AppendChargesOnlyNewSlab) {
  ExtendibleArray a({100, 100});
  a.counter().Reset();
  ASSERT_TRUE(a.Expand(0, 1).ok());  // one new row: 100 cells
  EXPECT_LE(a.counter().bytes_read(), 100 * sizeof(double) + 64);
}

TEST(ExtendibleArrayTest, Validation) {
  ExtendibleArray a({2, 2});
  EXPECT_FALSE(a.Expand(5, 1).ok());
  EXPECT_TRUE(a.Expand(0, 0).ok());  // no-op
  EXPECT_EQ(a.num_segments(), 1u);
  EXPECT_FALSE(a.Get({2, 0}).ok());
  EXPECT_FALSE(a.SumRange({{0, 3}, {0, 2}}).ok());
}

}  // namespace
}  // namespace statcube
