// Tests for the /statusz time-series layer (obs/timeseries_ring.h): ring
// rotation and tear-free snapshots under a concurrent writer, and the
// MetricSampler's derived series — counter rates, ratio series, gauge
// samples, and sliding-window histogram percentiles — ticked
// deterministically via SampleOnce.

#include "statcube/obs/timeseries_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.h"
#include "statcube/obs/metrics.h"

namespace statcube {
namespace {

// ------------------------------------------------------- TimeSeriesRing

TEST(TimeSeriesRingTest, RotationKeepsNewestValues) {
  obs::TimeSeriesRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.Last(), 0.0);  // before any push
  for (int i = 0; i < 10; ++i) ring.Push(double(i));
  EXPECT_EQ(ring.count(), 10u);
  EXPECT_EQ(ring.Last(), 9.0);
  EXPECT_EQ(ring.Snapshot(), (std::vector<double>{6, 7, 8, 9}));
}

TEST(TimeSeriesRingTest, ZeroCapacityClampsToOne) {
  obs::TimeSeriesRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Push(1.0);
  ring.Push(2.0);
  EXPECT_EQ(ring.Snapshot(), std::vector<double>{2.0});
}

TEST(TimeSeriesRingTest, PartialFillSnapshotsOldestFirst) {
  obs::TimeSeriesRing ring(8);
  ring.Push(3.0);
  ring.Push(1.0);
  EXPECT_EQ(ring.Snapshot(), (std::vector<double>{3.0, 1.0}));
}

// The tear-free contract: a reader racing the single writer never sees a
// half-rotated window. The writer pushes consecutive integers, so any torn
// or overwritten read would show up as a gap or an out-of-order value.
// Runs under TSan via the sanitizer CI jobs.
TEST(TimeSeriesRingTest, SnapshotIsNeverTornUnderConcurrentWriter) {
  obs::TimeSeriesRing ring(64);
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 200000; ++i) ring.Push(double(i));
    done.store(true, std::memory_order_release);
  });
  size_t snapshots = 0;
  while (!done.load(std::memory_order_acquire)) {
    std::vector<double> snap = ring.Snapshot();
    ASSERT_LE(snap.size(), 64u);
    for (size_t i = 1; i < snap.size(); ++i)
      ASSERT_EQ(snap[i], snap[i - 1] + 1.0)
          << "torn window at snapshot " << snapshots << " index " << i;
    ++snapshots;
  }
  writer.join();
  EXPECT_EQ(ring.Snapshot().back(), 199999.0);
}

// -------------------------------------------------------- MetricSampler

obs::MetricSamplerOptions SmallSampler() {
  obs::MetricSamplerOptions opt;
  opt.interval_ms = 10;
  opt.ring_capacity = 8;
  opt.percentile_window = 2;
  return opt;
}

TEST(MetricSamplerTest, CounterRateReactsToDeltas) {
  obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("tsrtest.rate.counter");
  obs::MetricSampler sampler(SmallSampler());
  sampler.AddCounterRate("tsrtest.rate.counter");

  c.Add(7);
  sampler.SampleOnce();
  std::vector<double> series = sampler.Series("tsrtest.rate.counter.rate");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_GT(series[0], 0.0);  // 7 new counts over a positive dt

  sampler.SampleOnce();  // no new counts: the rate drops to exactly zero
  series = sampler.Series("tsrtest.rate.counter.rate");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[1], 0.0);
  EXPECT_EQ(sampler.samples(), 2u);
}

TEST(MetricSamplerTest, RatioSeriesIsDeterministicPerTick) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& hits = reg.GetCounter("tsrtest.ratio.hits");
  obs::Counter& misses = reg.GetCounter("tsrtest.ratio.misses");
  obs::MetricSampler sampler(SmallSampler());
  sampler.AddCounterRatio("tsrtest.ratio", "tsrtest.ratio.hits",
                          {"tsrtest.ratio.hits", "tsrtest.ratio.misses"});

  hits.Add(3);
  misses.Add(1);
  sampler.SampleOnce();
  sampler.SampleOnce();  // no deltas: 0/0 publishes 0
  hits.Add(2);
  sampler.SampleOnce();  // 2 hits / 2 lookups
  EXPECT_EQ(sampler.Series("tsrtest.ratio"),
            (std::vector<double>{0.75, 0.0, 1.0}));
}

TEST(MetricSamplerTest, GaugeSeriesSamplesInstantaneousValue) {
  obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge("tsrtest.gauge");
  obs::MetricSampler sampler(SmallSampler());
  sampler.AddGauge("tsrtest.gauge");
  g.Set(42.0);
  sampler.SampleOnce();
  g.Set(-3.0);
  sampler.SampleOnce();
  EXPECT_EQ(sampler.Series("tsrtest.gauge"),
            (std::vector<double>{42.0, -3.0}));
}

TEST(MetricSamplerTest, HistogramWindowSlidesAndInterpolates) {
  // Custom bounds make the interpolation arithmetic exact: ten values of 15
  // all land in the (10, 20] bucket, so pK = 10 + 10 * rank / 10.
  obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tsrtest.window.hist", {10.0, 20.0, 40.0});
  obs::MetricSampler sampler(SmallSampler());  // percentile_window = 2
  sampler.AddHistogramWindow("tsrtest.window.hist");

  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  sampler.SampleOnce();
  EXPECT_EQ(sampler.Series("tsrtest.window.hist.p50").back(), 15.0);
  EXPECT_EQ(sampler.Series("tsrtest.window.hist.p95").back(), 19.0);
  EXPECT_EQ(sampler.Series("tsrtest.window.hist.p99").back(), 19.0);
  EXPECT_GT(sampler.Series("tsrtest.window.hist.rate").back(), 0.0);

  // One more tick with no observations: the ten values are still inside
  // the 2-tick window.
  sampler.SampleOnce();
  EXPECT_EQ(sampler.Series("tsrtest.window.hist.p50").back(), 15.0);

  // A second idle tick pushes them out of the window entirely.
  sampler.SampleOnce();
  EXPECT_EQ(sampler.Series("tsrtest.window.hist.p50").back(), 0.0);
  EXPECT_EQ(sampler.Series("tsrtest.window.hist.p99").back(), 0.0);

  // New observations re-enter immediately: four values of 30 land in the
  // (20, 40] bucket; p50 rank 2 of 4 interpolates to 20 + 20 * 2/4 = 30.
  for (int i = 0; i < 4; ++i) h.Observe(30.0);
  sampler.SampleOnce();
  EXPECT_EQ(sampler.Series("tsrtest.window.hist.p50").back(), 30.0);
}

TEST(MetricSamplerTest, SnapshotAllSortedAndJsonValid) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("tsrtest.all.a");
  reg.GetGauge("tsrtest.all.b");
  obs::MetricSampler sampler(SmallSampler());
  sampler.AddCounterRate("tsrtest.all.a");
  sampler.AddGauge("tsrtest.all.b");
  sampler.AddHistogramWindow("tsrtest.all.h");
  sampler.SampleOnce();

  auto all = sampler.SnapshotAll();
  ASSERT_GE(all.size(), 6u);  // a.rate, b, h.rate, h.p50, h.p95, h.p99
  for (size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1].first, all[i].first) << "not sorted by name";
  for (const auto& [name, values] : all)
    EXPECT_EQ(values.size(), 1u) << name;

  EXPECT_TRUE(JsonChecker(sampler.ToJson()).Valid()) << sampler.ToJson();
  EXPECT_TRUE(sampler.Series("tsrtest.no.such.series").empty());
}

TEST(MetricSamplerTest, BackgroundThreadTicksAndStopsIdempotently) {
  obs::MetricSamplerOptions opt = SmallSampler();
  obs::MetricSampler sampler(opt);
  sampler.AddDefaultStatuszSeries();
  sampler.Start();
  sampler.Start();  // idempotent
  while (sampler.samples() < 2) std::this_thread::yield();
  sampler.Stop();
  sampler.Stop();  // idempotent
  uint64_t ticks = sampler.samples();
  EXPECT_GE(ticks, 2u);
  // Restartable after Stop.
  sampler.Start();
  while (sampler.samples() == ticks) std::this_thread::yield();
  sampler.Stop();
}

}  // namespace
}  // namespace statcube
