// Tests for holistic statistics (paper §5.6).

#include "statcube/olap/statistics.h"

#include <gtest/gtest.h>

#include "statcube/common/rng.h"

namespace statcube {
namespace {

TEST(PercentileTest, Basic) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(*Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(*Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(*Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(*Percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(*Percentile(v, 10), 1.4);  // interpolated
}

TEST(PercentileTest, UnsortedInput) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(*Percentile(v, 50), 3.0);
}

TEST(PercentileTest, Validation) {
  EXPECT_FALSE(Percentile({}, 50).ok());
  EXPECT_FALSE(Percentile({1.0}, -1).ok());
  EXPECT_FALSE(Percentile({1.0}, 101).ok());
  EXPECT_DOUBLE_EQ(*Percentile({7.0}, 50), 7.0);
}

TEST(MedianTest, EvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(*Median({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(*Median({1, 2, 3}), 2.0);
}

TEST(TrimmedMeanTest, DiscardsExtremes) {
  // 10 values; trimming 10% drops the single min and max.
  std::vector<double> v = {1000, 2, 3, 4, 5, 6, 7, 8, 9, -1000};
  auto tm = TrimmedMean(v, 0.1);
  ASSERT_TRUE(tm.ok());
  EXPECT_DOUBLE_EQ(*tm, (2 + 3 + 4 + 5 + 6 + 7 + 8 + 9) / 8.0);
}

TEST(TrimmedMeanTest, ZeroTrimIsMean) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(*TrimmedMean(v, 0.0), 2.5);
}

TEST(TrimmedMeanTest, Validation) {
  EXPECT_FALSE(TrimmedMean({}, 0.1).ok());
  EXPECT_FALSE(TrimmedMean({1, 2}, 0.5).ok());
  EXPECT_FALSE(TrimmedMean({1, 2}, -0.1).ok());
}

TEST(MeanStdDevTest, KnownValues) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(*Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(*StdDev(v), 2.0);
  EXPECT_FALSE(Mean({}).ok());
  EXPECT_FALSE(StdDev({}).ok());
}

TEST(GroupedHolisticTest, MedianPerGroup) {
  Schema s;
  s.AddColumn("g", ValueType::kString);
  s.AddColumn("v", ValueType::kDouble);
  Table t("t", s);
  for (double v : {1.0, 2.0, 3.0}) t.AppendRowUnchecked({Value("a"), Value(v)});
  for (double v : {10.0, 20.0, 30.0, 40.0})
    t.AppendRowUnchecked({Value("b"), Value(v)});
  auto r = GroupedHolistic(t, {"g"}, "v", "median");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(r->at(0, 1).AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(r->at(1, 1).AsDouble(), 25.0);
  EXPECT_EQ(r->schema().column(1).name, "median_v");
}

TEST(GroupedHolisticTest, PercentileAndTrimSpecs) {
  Schema s;
  s.AddColumn("g", ValueType::kString);
  s.AddColumn("v", ValueType::kDouble);
  Table t("t", s);
  for (int i = 1; i <= 10; ++i) t.AppendRowUnchecked({Value("a"), Value(double(i))});
  auto p = GroupedHolistic(t, {"g"}, "v", "p100");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->at(0, 1).AsDouble(), 10.0);
  auto tr = GroupedHolistic(t, {"g"}, "v", "trimmed10");
  ASSERT_TRUE(tr.ok());
  EXPECT_DOUBLE_EQ(tr->at(0, 1).AsDouble(), 5.5);  // drops 1 and 10
  EXPECT_FALSE(GroupedHolistic(t, {"g"}, "v", "bogus").ok());
  EXPECT_FALSE(GroupedHolistic(t, {"g"}, "v", "p101").ok());
  EXPECT_FALSE(GroupedHolistic(t, {"g"}, "v", "trimmed50").ok());
  EXPECT_FALSE(GroupedHolistic(t, {"ghost"}, "v", "median").ok());
}

TEST(PercentileTest, RobustOnRandomData) {
  Rng rng(4);
  std::vector<double> v;
  for (int i = 0; i < 10001; ++i) v.push_back(double(rng.Uniform(1000000)));
  auto p50 = Percentile(v, 50);
  ASSERT_TRUE(p50.ok());
  // Median of ~uniform[0, 1e6) is near 5e5.
  EXPECT_NEAR(*p50, 500000, 25000);
  auto p99 = Percentile(v, 99);
  ASSERT_TRUE(p99.ok());
  EXPECT_GT(*p99, *p50);
}

}  // namespace
}  // namespace statcube
