// Tests for the physical layouts of §6.1: row files, transposed files,
// bit-transposed files. All three must answer identical queries identically;
// the block accounting must reflect the paper's claims (transposed scans
// read fewer blocks; row reassembly is the transposed penalty).

#include "statcube/storage/stores.h"

#include <gtest/gtest.h>

#include <memory>

#include "statcube/common/rng.h"

namespace statcube {
namespace {

Table MakeCensus(int n, uint64_t seed) {
  Schema s;
  s.AddColumn("state", ValueType::kString);
  s.AddColumn("race", ValueType::kString);
  s.AddColumn("sex", ValueType::kString);
  s.AddColumn("age_group", ValueType::kString);
  s.AddColumn("population", ValueType::kInt64);
  Table t("census", s);
  Rng rng(seed);
  const char* races[] = {"white", "black", "asian", "other"};
  for (int i = 0; i < n; ++i) {
    t.AppendRowUnchecked({Value("st" + std::to_string(rng.Uniform(50))),
                          Value(races[rng.Uniform(4)]),
                          Value(rng.Bernoulli(0.5) ? "M" : "F"),
                          Value("age" + std::to_string(rng.Uniform(10))),
                          Value(int64_t(rng.Uniform(10000)))});
  }
  return t;
}

class StoresTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = MakeCensus(5000, 42);
    row_ = std::make_unique<RowFileStore>(table_);
    transposed_ = std::make_unique<TransposedStore>(table_);
    bit_ = std::make_unique<BitTransposedStore>(table_, "population");
  }

  double ReferenceSum(const std::vector<EqFilter>& filters) {
    double sum = 0;
    for (const Row& r : table_.rows()) {
      bool ok = true;
      for (const auto& f : filters) {
        size_t idx = *table_.schema().IndexOf(f.column);
        if (r[idx] != f.value) {
          ok = false;
          break;
        }
      }
      if (ok) sum += r[4].AsDouble();
    }
    return sum;
  }

  Table table_;
  std::unique_ptr<RowFileStore> row_;
  std::unique_ptr<TransposedStore> transposed_;
  std::unique_ptr<BitTransposedStore> bit_;
};

TEST_F(StoresTest, AllLayoutsAgreeOnUnfilteredSum) {
  double ref = ReferenceSum({});
  EXPECT_DOUBLE_EQ(*row_->SumWhere({}, "population"), ref);
  EXPECT_DOUBLE_EQ(*transposed_->SumWhere({}, "population"), ref);
  EXPECT_DOUBLE_EQ(*bit_->SumWhere({}, "population"), ref);
}

TEST_F(StoresTest, AllLayoutsAgreeOnFilteredSums) {
  std::vector<std::vector<EqFilter>> cases = {
      {{"sex", Value("F")}},
      {{"race", Value("asian")}},
      {{"sex", Value("M")}, {"race", Value("white")}},
      {{"state", Value("st7")}, {"sex", Value("F")}, {"race", Value("black")}},
  };
  for (const auto& filters : cases) {
    double ref = ReferenceSum(filters);
    EXPECT_DOUBLE_EQ(*row_->SumWhere(filters, "population"), ref);
    EXPECT_DOUBLE_EQ(*transposed_->SumWhere(filters, "population"), ref);
    EXPECT_DOUBLE_EQ(*bit_->SumWhere(filters, "population"), ref);
  }
}

TEST_F(StoresTest, MissingFilterValueYieldsZero) {
  std::vector<EqFilter> f = {{"race", Value("martian")}};
  EXPECT_DOUBLE_EQ(*row_->SumWhere(f, "population"), 0.0);
  EXPECT_DOUBLE_EQ(*transposed_->SumWhere(f, "population"), 0.0);
  EXPECT_DOUBLE_EQ(*bit_->SumWhere(f, "population"), 0.0);
}

TEST_F(StoresTest, UnknownColumnErrors) {
  EXPECT_FALSE(row_->SumWhere({{"ghost", Value(1)}}, "population").ok());
  EXPECT_FALSE(transposed_->SumWhere({}, "ghost").ok());
  EXPECT_FALSE(bit_->SumWhere({{"ghost", Value(1)}}, "population").ok());
}

TEST_F(StoresTest, GetRowRoundTrips) {
  for (size_t i : {size_t{0}, size_t{1234}, size_t{4999}}) {
    auto r1 = row_->GetRow(i);
    auto r2 = transposed_->GetRow(i);
    auto r3 = bit_->GetRow(i);
    ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_EQ((*r1)[c], table_.at(i, c));
      EXPECT_EQ((*r2)[c], table_.at(i, c));
      // Bit store holds the measure as double; compare numerically.
      if (c == 4) {
        EXPECT_DOUBLE_EQ((*r3)[c].AsDouble(), table_.at(i, c).AsDouble());
      } else {
        EXPECT_EQ((*r3)[c], table_.at(i, c));
      }
    }
  }
  EXPECT_FALSE(row_->GetRow(999999).ok());
  EXPECT_FALSE(transposed_->GetRow(999999).ok());
  EXPECT_FALSE(bit_->GetRow(999999).ok());
}

TEST_F(StoresTest, TransposedScanReadsFewerBlocks) {
  // The Figure 18 claim: a summary query over 2 of 5 columns reads ~2/5 of
  // the blocks a row scan reads.
  row_->counter().Reset();
  transposed_->counter().Reset();
  (void)*row_->SumWhere({{"sex", Value("F")}}, "population");
  (void)*transposed_->SumWhere({{"sex", Value("F")}}, "population");
  EXPECT_LT(transposed_->counter().blocks_read(),
            row_->counter().blocks_read() / 2);
}

TEST_F(StoresTest, TransposedRowFetchPenalty) {
  // The flip side: reassembling one row touches every column file.
  row_->counter().Reset();
  transposed_->counter().Reset();
  (void)row_->GetRow(100);
  (void)transposed_->GetRow(100);
  EXPECT_GT(transposed_->counter().blocks_read(),
            row_->counter().blocks_read());
}

TEST_F(StoresTest, BitTransposedCompresses) {
  // Figure 19: dictionary codes + bit planes are far smaller than the raw
  // bytes (state: 50 values -> 6 bits vs ~4 chars; sex: 1 bit vs 1 char...).
  EXPECT_LT(bit_->ByteSize(), row_->ByteSize());
  EXPECT_LT(bit_->ByteSize(), transposed_->ByteSize());
}

TEST_F(StoresTest, BitTransposedScanReadsFewerBytesThanTransposed) {
  transposed_->counter().Reset();
  bit_->counter().Reset();
  (void)*transposed_->SumWhere({{"sex", Value("F")}}, "population");
  (void)*bit_->SumWhere({{"sex", Value("F")}}, "population");
  EXPECT_LE(bit_->counter().bytes_read(), transposed_->counter().bytes_read());
}

TEST_F(StoresTest, SelectBitmapMatchesPredicate) {
  auto bm = bit_->SelectBitmap("race", Value("black"));
  ASSERT_TRUE(bm.ok());
  size_t expected = 0;
  for (const Row& r : table_.rows())
    if (r[1] == Value("black")) ++expected;
  EXPECT_EQ(bm->PopCount(), expected);
  // Spot-check positions.
  for (size_t i = 0; i < 200; ++i)
    EXPECT_EQ(bm->Get(i), table_.at(i, 1) == Value("black")) << i;
}

TEST_F(StoresTest, SelectBitmapUnknownValueEmpty) {
  auto bm = bit_->SelectBitmap("race", Value("martian"));
  ASSERT_TRUE(bm.ok());
  EXPECT_EQ(bm->PopCount(), 0u);
}

TEST(BitTransposedRleTest, SortedColumnCompressesUnderRle) {
  // A sort-leading column has long runs; with RLE enabled the store should
  // be much smaller than with planes alone.
  Schema s;
  s.AddColumn("state", ValueType::kString);
  s.AddColumn("v", ValueType::kInt64);
  Table t("t", s);
  for (int st = 0; st < 50; ++st)
    for (int i = 0; i < 2000; ++i)
      t.AppendRowUnchecked({Value("state" + std::to_string(st)), Value(i)});

  BitTransposedStore with_rle(t, "v", {.enable_rle = true});
  BitTransposedStore no_rle(t, "v", {.enable_rle = false});
  // The measure column (plain doubles) is identical in both; compare the
  // encoded category portion.
  size_t measure_bytes = t.num_rows() * sizeof(double);
  size_t with_rle_cat = with_rle.ByteSize() - measure_bytes;
  size_t no_rle_cat = no_rle.ByteSize() - measure_bytes;
  EXPECT_LT(with_rle_cat, no_rle_cat / 10);
}

}  // namespace
}  // namespace statcube
