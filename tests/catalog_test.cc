// Tests for the micro/macro/metadata catalog (§3.3.3, §5.7).

#include "statcube/core/catalog.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "statcube/olap/homomorphism.h"
#include "statcube/workload/census.h"

namespace statcube {
namespace {

Catalog MakeCatalog() {
  Catalog cat;
  CensusOptions opt;
  opt.num_states = 2;
  opt.counties_per_state = 2;
  auto micro = MakeCensusMicroData(200, opt);
  EXPECT_TRUE(cat.RegisterMicroData("census_micro", *micro).ok());
  auto macro = SummarizeMicro(*micro, {"county", "sex"},
                              {AggFn::kSum, "income", "total_income"});
  EXPECT_TRUE(cat.RegisterObject("income_by_county_sex", *macro).ok());
  EXPECT_TRUE(cat.RecordDerivation({"income_by_county_sex",
                                    {"census_micro"},
                                    "group-by sum of income"})
                  .ok());
  return cat;
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog cat = MakeCatalog();
  EXPECT_TRUE(cat.Contains("census_micro"));
  EXPECT_TRUE(cat.Contains("income_by_county_sex"));
  EXPECT_FALSE(cat.Contains("ghost"));
  ASSERT_TRUE(cat.MicroData("census_micro").ok());
  ASSERT_TRUE(cat.Object("income_by_county_sex").ok());
  EXPECT_FALSE(cat.MicroData("income_by_county_sex").ok());
  EXPECT_FALSE(cat.Object("census_micro").ok());
  EXPECT_EQ(cat.ListMicro().size(), 1u);
  EXPECT_EQ(cat.ListObjects().size(), 1u);
}

TEST(CatalogTest, DuplicateNamesRejectedAcrossKinds) {
  Catalog cat = MakeCatalog();
  Schema s;
  s.AddColumn("x", ValueType::kInt64);
  Table t("t", s);
  EXPECT_EQ(cat.RegisterMicroData("census_micro", t).code(),
            StatusCode::kAlreadyExists);
  StatisticalObject o("o");
  EXPECT_EQ(cat.RegisterObject("census_micro", o).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DerivationValidation) {
  Catalog cat = MakeCatalog();
  EXPECT_EQ(cat.RecordDerivation({"ghost", {"census_micro"}, "m"}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      cat.RecordDerivation({"income_by_county_sex", {"ghost"}, "m"}).code(),
      StatusCode::kNotFound);
  EXPECT_EQ(cat.RecordDerivation({"income_by_county_sex", {}, "m"}).code(),
            StatusCode::kInvalidArgument);
  // The §5.7 rule: the method must be recorded.
  EXPECT_EQ(cat.RecordDerivation(
                   {"income_by_county_sex", {"census_micro"}, ""})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.RecordDerivation({"census_micro", {"census_micro"}, "m"})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, LineageAndDependents) {
  Catalog cat = MakeCatalog();
  // Second-level derivation: roll the object up to states.
  auto obj = cat.Object("income_by_county_sex");
  ASSERT_TRUE(obj.ok());
  StatisticalObject rolled = **obj;  // pretend-rolled; provenance is the point
  ASSERT_TRUE(cat.RegisterObject("income_by_state", rolled).ok());
  ASSERT_TRUE(cat.RecordDerivation({"income_by_state",
                                    {"income_by_county_sex"},
                                    "roll-up geo county -> state"})
                  .ok());

  auto lineage = cat.Lineage("income_by_state");
  ASSERT_TRUE(lineage.ok());
  ASSERT_EQ(lineage->size(), 2u);
  // Both methods are on record.
  std::vector<std::string> methods;
  for (const auto& d : *lineage) methods.push_back(d.method);
  EXPECT_NE(std::find(methods.begin(), methods.end(),
                      "roll-up geo county -> state"),
            methods.end());
  EXPECT_NE(std::find(methods.begin(), methods.end(),
                      "group-by sum of income"),
            methods.end());

  auto deps = cat.Dependents("census_micro");
  ASSERT_EQ(deps.size(), 2u);  // both macro datasets refresh on change
  EXPECT_TRUE(cat.Dependents("income_by_state").empty());
  EXPECT_FALSE(cat.Lineage("ghost").ok());
}

}  // namespace
}  // namespace statcube
