// Tests for the concise query language (§5.1): parsing, execution,
// hierarchy-level inference, error reporting.

#include "statcube/query/parser.h"

#include <gtest/gtest.h>

#include "statcube/workload/retail.h"

namespace statcube {
namespace {

const StatisticalObject& Sales() {
  static StatisticalObject obj = [] {
    RetailOptions opt;
    opt.num_products = 10;
    opt.num_stores = 4;
    opt.num_cities = 2;
    opt.num_days = 10;
    opt.num_rows = 1000;
    return MakeRetailWorkload(opt)->object;
  }();
  return obj;
}

TEST(ParseTest, FullQuery) {
  auto q = ParseQuery(
      "SELECT sum(amount), avg(qty) BY city WHERE product = 'prod1' AND "
      "day = '1996-1-3'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggs.size(), 2u);
  EXPECT_EQ(q->aggs[0].fn, AggFn::kSum);
  EXPECT_EQ(q->aggs[0].column, "amount");
  EXPECT_EQ(q->aggs[1].fn, AggFn::kAvg);
  EXPECT_EQ(q->by, (std::vector<std::string>{"city"}));
  ASSERT_EQ(q->where.size(), 2u);
  EXPECT_EQ(q->where[0].first, "product");
  EXPECT_EQ(q->where[0].second, Value("prod1"));
}

TEST(ParseTest, CountStarAndNumbers) {
  auto q = ParseQuery("select count() where year = 1996 and price = 19.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->aggs[0].fn, AggFn::kCountAll);
  EXPECT_EQ(q->where[0].second, Value(int64_t(1996)));
  EXPECT_EQ(q->where[1].second, Value(19.5));
}

TEST(ParseTest, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("sum(amount)").ok());            // no SELECT
  EXPECT_FALSE(ParseQuery("SELECT bogus(amount)").ok());   // unknown fn
  EXPECT_FALSE(ParseQuery("SELECT sum amount").ok());      // missing parens
  EXPECT_FALSE(ParseQuery("SELECT sum(amount) extra").ok());
  EXPECT_FALSE(ParseQuery("SELECT sum(amount) WHERE x").ok());
  EXPECT_FALSE(ParseQuery("SELECT sum(amount) WHERE x = 'unterminated").ok());
  EXPECT_TRUE(ParseQuery("SELECT count()").ok());  // count() is legal
}

TEST(ExecuteTest, GroupByDimension) {
  auto r = Query(Sales(), "SELECT sum(amount) BY store");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 4u);
  EXPECT_TRUE(r->schema().Contains("sum_amount"));
}

TEST(ExecuteTest, GroupByHierarchyLevelRollsUp) {
  // "city" is not a dimension of the object — it is level 1 of the store
  // hierarchy; the executor rolls up automatically.
  auto r = Query(Sales(), "SELECT sum(amount) BY city");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 2u);
  // Totals match the direct store-level query.
  auto by_store = Query(Sales(), "SELECT sum(amount) BY store");
  ASSERT_TRUE(by_store.ok());
  double t1 = 0, t2 = 0;
  for (const Row& row : r->rows()) t1 += row[1].AsDouble();
  for (const Row& row : by_store->rows()) t2 += row[1].AsDouble();
  EXPECT_NEAR(t1, t2, 1e-6);
}

TEST(ExecuteTest, WhereOnHierarchyLevel) {
  auto r = Query(Sales(),
                 "SELECT sum(qty) BY product WHERE category = 'cat1'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Only products of cat1 appear.
  EXPECT_GT(r->num_rows(), 0u);
  EXPECT_LT(r->num_rows(), 10u);
}

TEST(ExecuteTest, LeafAndParentLevelTogether) {
  // Group by the leaf dimension while filtering on its parent level: the
  // derived-column strategy must keep both addressable.
  auto r = Query(Sales(), "SELECT sum(qty) BY store WHERE city = 'city1'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 2u);  // 4 stores over 2 cities
  for (const Row& row : r->rows())
    EXPECT_NE(row[0].AsString().find("city1"), std::string::npos);
}

TEST(ExecuteTest, GlobalAggregate) {
  auto r = Query(Sales(), "SELECT sum(qty), count()");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_GT(r->at(0, 0).AsDouble(), 0.0);
}

TEST(ExecuteTest, UnknownIdentifier) {
  EXPECT_FALSE(Query(Sales(), "SELECT sum(amount) BY ghost").ok());
  EXPECT_FALSE(Query(Sales(), "SELECT sum(ghost)").ok());
  EXPECT_FALSE(
      Query(Sales(), "SELECT sum(amount) WHERE ghost = 'x'").ok());
}

TEST(ExecuteTest, ByCubeProducesAllRows) {
  auto r = Query(Sales(), "SELECT sum(amount) BY CUBE(city, day)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 2 cities x 10 days fully populated: (2+1)*(10+1) = 33 rows.
  EXPECT_EQ(r->num_rows(), 33u);
  bool grand = false;
  for (const Row& row : r->rows())
    if (row[0].is_all() && row[1].is_all()) grand = true;
  EXPECT_TRUE(grand);
  // Syntax errors.
  EXPECT_FALSE(ParseQuery("SELECT sum(a) BY CUBE x").ok());
  EXPECT_FALSE(ParseQuery("SELECT sum(a) BY CUBE(x").ok());
  EXPECT_FALSE(ParseQuery("SELECT sum(a) BY CUBE()").ok());
}

TEST(ExecuteTest, MatchesManualPipeline) {
  // The text query equals the hand-built group-by.
  auto text = Query(Sales(), "SELECT sum(amount) BY day");
  auto manual = GroupBy(Sales().data(), {"day"},
                        {{AggFn::kSum, "amount", "sum_amount"}});
  ASSERT_TRUE(text.ok());
  ASSERT_TRUE(manual.ok());
  ASSERT_EQ(text->num_rows(), manual->num_rows());
  for (size_t i = 0; i < text->num_rows(); ++i) {
    EXPECT_EQ(text->at(i, 0), manual->at(i, 0));
    EXPECT_NEAR(text->at(i, 1).AsDouble(), manual->at(i, 1).AsDouble(), 1e-6);
  }
}

}  // namespace
}  // namespace statcube
