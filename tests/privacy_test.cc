// Tests for §7: query-set restriction, the tracker compromise, overlap
// control, perturbation, suppression.

#include <gtest/gtest.h>

#include "statcube/common/rng.h"
#include "statcube/privacy/perturbation.h"
#include "statcube/privacy/protected_db.h"
#include "statcube/privacy/suppression.h"
#include "statcube/privacy/tracker.h"
#include "statcube/relational/aggregate.h"

namespace statcube {
namespace {

// Employee micro-data mirroring the paper's §7 example: a single employee
// aged 65, salaries restricted.
Table MakeEmployees(int n, uint64_t seed) {
  Schema s;
  s.AddColumn("name", ValueType::kString);
  s.AddColumn("sex", ValueType::kString);
  s.AddColumn("dept", ValueType::kString);
  s.AddColumn("age", ValueType::kInt64);
  s.AddColumn("salary", ValueType::kInt64);
  Table t("employees", s);
  Rng rng(seed);
  const char* depts[] = {"eng", "sales", "hr", "ops"};
  for (int i = 0; i < n - 1; ++i) {
    t.AppendRowUnchecked({Value("emp" + std::to_string(i)),
                          Value(rng.Bernoulli(0.6) ? "M" : "F"),
                          Value(depts[rng.Uniform(4)]),
                          Value(int64_t(25 + rng.Uniform(35))),  // under 60
                          Value(int64_t(40000 + rng.Uniform(60000)))});
  }
  // The target: the only employee aged 65.
  t.AppendRowUnchecked(
      {Value("target"), Value("M"), Value("eng"), Value(65), Value(123456)});
  return t;
}

TEST(ProtectedDatabaseTest, RefusesSmallAndLargeQuerySets) {
  Table micro = MakeEmployees(200, 1);
  ProtectedDatabase db(micro, {.min_query_set_size = 5});
  // Singleton query set: refused.
  auto pred = expr::ColumnEq(micro.schema(), "age", Value(65));
  ASSERT_TRUE(pred.ok());
  auto r = db.Query(AggFn::kSum, "salary", *pred);
  EXPECT_EQ(r.status().code(), StatusCode::kPrivacyRefused);
  // Complement (everything but the target): also refused — the paper's
  // "average salary of all employees under 65" attack is blocked.
  r = db.Query(AggFn::kSum, "salary", expr::Not(*pred));
  EXPECT_EQ(r.status().code(), StatusCode::kPrivacyRefused);
  // Legal mid-size query answers.
  auto male = expr::ColumnEq(micro.schema(), "sex", Value("M"));
  ASSERT_TRUE(male.ok());
  r = db.Query(AggFn::kAvg, "salary", *male);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(db.queries_refused(), 2u);
  EXPECT_EQ(db.queries_answered(), 1u);
}

TEST(TrackerTest, GeneralTrackerCompromisesSizeRestriction) {
  // The [DS80] negative result: with only query-set size restriction, the
  // restricted salary is reconstructed exactly.
  Table micro = MakeEmployees(200, 2);
  ProtectedDatabase db(micro, {.min_query_set_size = 10});

  auto tracker = FindGeneralTracker(db, micro.schema(), {"sex", "dept"},
                                    {{Value("M"), Value("F")},
                                     {Value("eng"), Value("sales"),
                                      Value("hr"), Value("ops")}});
  ASSERT_TRUE(tracker.ok()) << tracker.status().ToString();

  TrackerAttack attack(&db, *tracker);
  auto is_target = expr::ColumnEq(micro.schema(), "age", Value(65));
  ASSERT_TRUE(is_target.ok());

  // Count of a singleton set, recovered through legal queries only.
  auto count = attack.Count(*is_target);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_NEAR(*count, 1.0, 1e-9);

  // The restricted value itself.
  auto salary = attack.IndividualValue("salary", *is_target);
  ASSERT_TRUE(salary.ok()) << salary.status().ToString();
  EXPECT_NEAR(*salary, 123456.0, 1e-6);
  EXPECT_GT(attack.queries_used(), 0u);
}

TEST(TrackerTest, IndividualTrackerTwoQueriesPerSecret) {
  // The target is the only eng employee aged 65: C1 = (dept=eng),
  // C2 = (age=65). T = C1 AND NOT C2 is large enough to be legal.
  Table micro = MakeEmployees(200, 8);
  ProtectedDatabase db(micro, {.min_query_set_size = 10});
  auto c1 = expr::ColumnEq(micro.schema(), "dept", Value("eng"));
  auto c2 = expr::ColumnEq(micro.schema(), "age", Value(65));
  ASSERT_TRUE(c1.ok() && c2.ok());
  IndividualTrackerAttack attack(&db, *c1, *c2);
  auto count = attack.Count();
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_NEAR(*count, 1.0, 1e-9);
  auto salary = attack.Sum("salary");
  ASSERT_TRUE(salary.ok());
  EXPECT_NEAR(*salary, 123456.0, 1e-6);
  EXPECT_EQ(attack.queries_used(), 4u);  // 2 per secret, 2 secrets asked
}

TEST(TrackerTest, OutputNoiseDegradesTheAttack) {
  Table micro = MakeEmployees(200, 3);
  ProtectedDatabase db(micro, {.min_query_set_size = 10,
                               .output_noise_stddev = 2000.0});
  // With noisy answers the probe-based finder cannot verify the window;
  // assume the attacker knows from public statistics that sex=M is a
  // tracker and constructs it directly.
  auto male = expr::ColumnEq(micro.schema(), "sex", Value("M"));
  ASSERT_TRUE(male.ok());
  GeneralTracker tracker{*male, expr::Not(*male), "sex = M"};
  TrackerAttack attack(&db, tracker);
  auto is_target = expr::ColumnEq(micro.schema(), "age", Value(65));
  ASSERT_TRUE(is_target.ok());
  auto salary = attack.Sum("salary", *is_target);
  ASSERT_TRUE(salary.ok());
  // The reconstruction is off by roughly the combined noise, i.e. it no
  // longer reveals the exact salary.
  EXPECT_GT(std::abs(*salary - 123456.0), 100.0);
}

TEST(TrackerTest, OverlapControlBlocksTheAttackEventually) {
  Table micro = MakeEmployees(200, 4);
  ProtectedDatabase db(micro,
                       {.min_query_set_size = 10, .max_overlap = 20});
  auto male = expr::ColumnEq(micro.schema(), "sex", Value("M"));
  ASSERT_TRUE(male.ok());
  // First query answers; repeating it overlaps itself fully: refused.
  ASSERT_TRUE(db.Query(AggFn::kCountAll, "", *male).ok());
  auto again = db.Query(AggFn::kCountAll, "", *male);
  EXPECT_EQ(again.status().code(), StatusCode::kPrivacyRefused);
  // And as the paper notes, the database degrades: large disjoint queries
  // remain, but the tracker's padded queries (which overlap heavily) fail.
}

TEST(ProtectedDatabaseTest, SampleQueriesApproximate) {
  Table micro = MakeEmployees(2000, 5);
  ProtectedDatabase exact_db(micro, {.min_query_set_size = 5});
  ProtectedDatabase sampled_db(
      micro, {.min_query_set_size = 5, .sample_rate = 0.3, .seed = 99});
  auto male = expr::ColumnEq(micro.schema(), "sex", Value("M"));
  ASSERT_TRUE(male.ok());
  auto exact = exact_db.Query(AggFn::kSum, "salary", *male);
  auto approx = sampled_db.Query(AggFn::kSum, "salary", *male);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  // Scaled sample sum is within ~10% of the truth on this size.
  EXPECT_NEAR(*approx / *exact, 1.0, 0.1);
  EXPECT_NE(*approx, *exact);
}

TEST(PerturbationTest, PreservesTotalsButNotIndividuals) {
  Table micro = MakeEmployees(500, 6);
  auto perturbed =
      PerturbInput(micro, {"salary"}, {.noise_stddev = 5000.0, .seed = 3});
  ASSERT_TRUE(perturbed.ok());
  auto row_err = MeanAbsoluteRowError(micro, *perturbed, "salary");
  ASSERT_TRUE(row_err.ok());
  EXPECT_GT(*row_err, 1000.0);  // individuals well hidden
  auto tot_err = RelativeTotalError(micro, *perturbed, "salary");
  ASSERT_TRUE(tot_err.ok());
  EXPECT_LT(*tot_err, 1e-9);  // statistics intact
}

TEST(PerturbationTest, WithoutTotalPreservationTotalsDrift) {
  Table micro = MakeEmployees(500, 7);
  auto perturbed = PerturbInput(
      micro, {"salary"},
      {.noise_stddev = 5000.0, .seed = 3, .preserve_total = false});
  ASSERT_TRUE(perturbed.ok());
  auto tot_err = RelativeTotalError(micro, *perturbed, "salary");
  ASSERT_TRUE(tot_err.ok());
  EXPECT_GT(*tot_err, 0.0);
}

TEST(SuppressionTest, PrimarySuppressionHidesSmallCells) {
  Schema s;
  s.AddColumn("county", ValueType::kString);
  s.AddColumn("disease", ValueType::kString);
  s.AddColumn("count", ValueType::kInt64);
  Table macro("cases", s);
  macro.AppendRowUnchecked({Value("c1"), Value("flu"), Value(120)});
  macro.AppendRowUnchecked({Value("c1"), Value("rare"), Value(2)});
  macro.AppendRowUnchecked({Value("c2"), Value("flu"), Value(80)});
  macro.AppendRowUnchecked({Value("c2"), Value("rare"), Value(40)});

  auto r = SuppressCells(macro, {"county", "disease"}, "count", {"count"},
                         {.count_threshold = 5, .complementary = false});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->primary.size(), 1u);
  EXPECT_EQ(r->primary[0], 1u);
  EXPECT_TRUE(r->published.at(1, 2).is_null());
  EXPECT_FALSE(r->published.at(0, 2).is_null());
}

TEST(SuppressionTest, ComplementarySuppressionBlocksSubtraction) {
  // One primary-suppressed cell per line would be recoverable from
  // marginals; a sibling must also disappear in every line it is alone in.
  Schema s;
  s.AddColumn("county", ValueType::kString);
  s.AddColumn("disease", ValueType::kString);
  s.AddColumn("count", ValueType::kInt64);
  Table macro("cases", s);
  macro.AppendRowUnchecked({Value("c1"), Value("flu"), Value(120)});
  macro.AppendRowUnchecked({Value("c1"), Value("rare"), Value(2)});
  macro.AppendRowUnchecked({Value("c2"), Value("flu"), Value(80)});
  macro.AppendRowUnchecked({Value("c2"), Value("rare"), Value(40)});

  auto r = SuppressCells(macro, {"county", "disease"}, "count", {"count"},
                         {.count_threshold = 5, .complementary = true});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->primary.size(), 1u);
  EXPECT_FALSE(r->secondary.empty());
  // No line may contain exactly one suppressed cell.
  auto suppressed = [&](size_t row) {
    return r->published.at(row, 2).is_null();
  };
  // County lines.
  int c1 = suppressed(0) + suppressed(1);
  int c2 = suppressed(2) + suppressed(3);
  EXPECT_NE(c1, 1);
  EXPECT_NE(c2, 1);
  // Disease lines.
  int flu = suppressed(0) + suppressed(2);
  int rare = suppressed(1) + suppressed(3);
  EXPECT_NE(flu, 1);
  EXPECT_NE(rare, 1);
}

TEST(SuppressionTest, ValidatesColumns) {
  Schema s;
  s.AddColumn("a", ValueType::kString);
  s.AddColumn("n", ValueType::kInt64);
  Table t("t", s);
  EXPECT_FALSE(SuppressCells(t, {"ghost"}, "n", {"n"}).ok());
  EXPECT_FALSE(SuppressCells(t, {"a"}, "ghost", {"n"}).ok());
}

}  // namespace
}  // namespace statcube
