// Tests for the time-series operations of §3.2(ii): series extraction,
// moving averages, weekly averages/highs/lows, drawdown.

#include "statcube/olap/timeseries.h"

#include <gtest/gtest.h>

#include "statcube/workload/stocks.h"

namespace statcube {
namespace {

const StatisticalObject& Stocks() {
  static StatisticalObject obj =
      *MakeStockWorkload({.num_stocks = 5, .num_weeks = 4});
  return obj;
}

TEST(ExtractSeriesTest, OrderedAndComplete) {
  auto s = ExtractSeries(Stocks(), "stock", Value("TKR0"), "day", "close");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->size(), 20u);  // 4 weeks x 5 weekdays
  for (size_t i = 1; i < s->size(); ++i)
    EXPECT_LT((*s)[i - 1].time, (*s)[i].time);
  for (const auto& p : *s) EXPECT_GT(p.value, 0.0);
}

TEST(ExtractSeriesTest, Validation) {
  EXPECT_FALSE(
      ExtractSeries(Stocks(), "ghost", Value("x"), "day", "close").ok());
  EXPECT_FALSE(
      ExtractSeries(Stocks(), "stock", Value("TKR0"), "ghost", "close").ok());
  EXPECT_FALSE(
      ExtractSeries(Stocks(), "stock", Value("TKR0"), "day", "ghost").ok());
  // Unknown entity: empty series, not an error.
  auto s = ExtractSeries(Stocks(), "stock", Value("TKR99"), "day", "close");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
}

TEST(MovingAverageTest, WindowMath) {
  std::vector<SeriesPoint> s = {{Value("t1"), 2},
                                {Value("t2"), 4},
                                {Value("t3"), 6},
                                {Value("t4"), 8}};
  auto ma = MovingAverage(s, 2);
  ASSERT_EQ(ma.size(), 4u);
  EXPECT_DOUBLE_EQ(ma[0].value, 2);    // partial prefix
  EXPECT_DOUBLE_EQ(ma[1].value, 3);
  EXPECT_DOUBLE_EQ(ma[2].value, 5);
  EXPECT_DOUBLE_EQ(ma[3].value, 7);
  // window 0 behaves as 1 (identity).
  auto id = MovingAverage(s, 0);
  EXPECT_DOUBLE_EQ(id[2].value, 6);
  // window larger than the series = running mean.
  auto run = MovingAverage(s, 100);
  EXPECT_DOUBLE_EQ(run[3].value, 5);
}

TEST(SummarizeByPeriodTest, WeeklyAvgHighLow) {
  auto s = ExtractSeries(Stocks(), "stock", Value("TKR1"), "day", "close");
  ASSERT_TRUE(s.ok());
  auto weekly = SummarizeByPeriod(Stocks(), "day", "calendar", 1, *s);
  ASSERT_TRUE(weekly.ok()) << weekly.status().ToString();
  ASSERT_EQ(weekly->size(), 4u);
  for (const auto& w : *weekly) {
    EXPECT_EQ(w.n, 5u);  // 5 weekdays
    EXPECT_LE(w.low, w.avg);
    EXPECT_LE(w.avg, w.high);
  }
  // Cross-check one week against the raw series.
  double sum = 0, hi = 0, lo = 1e18;
  for (size_t i = 0; i < 5; ++i) {  // week w0
    sum += (*s)[i].value;
    hi = std::max(hi, (*s)[i].value);
    lo = std::min(lo, (*s)[i].value);
  }
  const auto& w0 = (*weekly)[0];
  EXPECT_DOUBLE_EQ(w0.avg, sum / 5);
  EXPECT_DOUBLE_EQ(w0.high, hi);
  EXPECT_DOUBLE_EQ(w0.low, lo);
}

TEST(SummarizeByPeriodTest, Validation) {
  auto s = ExtractSeries(Stocks(), "stock", Value("TKR0"), "day", "close");
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(SummarizeByPeriod(Stocks(), "day", "ghost", 1, *s).ok());
  EXPECT_FALSE(SummarizeByPeriod(Stocks(), "day", "calendar", 0, *s).ok());
  EXPECT_FALSE(SummarizeByPeriod(Stocks(), "day", "calendar", 9, *s).ok());
  // Unmapped timestamp errors.
  std::vector<SeriesPoint> bogus = {{Value("not-a-day"), 1.0}};
  EXPECT_FALSE(SummarizeByPeriod(Stocks(), "day", "calendar", 1, bogus).ok());
}

TEST(MaxDrawdownTest, KnownSeries) {
  std::vector<SeriesPoint> s = {{Value("a"), 100}, {Value("b"), 120},
                                {Value("c"), 60},  {Value("d"), 90},
                                {Value("e"), 130}, {Value("f"), 117}};
  auto dd = MaxDrawdown(s);
  ASSERT_TRUE(dd.ok());
  EXPECT_DOUBLE_EQ(*dd, 0.5);  // 120 -> 60
  EXPECT_FALSE(MaxDrawdown({}).ok());
  auto flat = MaxDrawdown({{Value("a"), 5}, {Value("b"), 5}});
  ASSERT_TRUE(flat.ok());
  EXPECT_DOUBLE_EQ(*flat, 0.0);
}

}  // namespace
}  // namespace statcube
