// Tests for the Value scalar: typing, total order, hashing, ALL semantics.

#include "statcube/common/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace statcube {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(int64_t{42}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value::All().type(), ValueType::kAll);
  EXPECT_TRUE(Value::All().is_all());
}

TEST(ValueTest, IntImplicitConversion) {
  Value v(7);
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 7);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_NE(Value(3), Value(3.5));
  EXPECT_LT(Value(3), Value(3.5));
  EXPECT_GT(Value(4), Value(3.9));
}

TEST(ValueTest, CrossTypeOrder) {
  // NULL < numeric < string < ALL
  EXPECT_LT(Value::Null(), Value(0));
  EXPECT_LT(Value(123456), Value("a"));
  EXPECT_LT(Value("zzz"), Value::All());
  EXPECT_LT(Value::Null(), Value::All());
}

TEST(ValueTest, StringOrder) {
  EXPECT_LT(Value("apple"), Value("banana"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, AllEqualsOnlyAll) {
  EXPECT_EQ(Value::All(), Value::All());
  EXPECT_NE(Value::All(), Value("ALL"));
  EXPECT_NE(Value::All(), Value::Null());
}

TEST(ValueTest, HashConsistentWithEquality) {
  // equal across representations => equal hashes
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value::All().Hash(), Value::All().Hash());
}

TEST(ValueTest, UnorderedSetUsable) {
  std::unordered_set<Value> s;
  s.insert(Value(1));
  s.insert(Value(1.0));  // duplicate of 1
  s.insert(Value("a"));
  s.insert(Value::Null());
  s.insert(Value::All());
  EXPECT_EQ(s.size(), 4u);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(2.0).ToString(), "2.0");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value::All().ToString(), "ALL");
}

TEST(RowHashTest, RowsHashAndCompare) {
  Row a = {Value(1), Value("x")};
  Row b = {Value(1.0), Value("x")};
  Row c = {Value(1), Value("y")};
  EXPECT_TRUE(RowEq{}(a, b));
  EXPECT_EQ(RowHash{}(a), RowHash{}(b));
  EXPECT_FALSE(RowEq{}(a, c));
}

TEST(ValueTest, AsDoublePromotesInt) {
  EXPECT_DOUBLE_EQ(Value(5).AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(Value(5.25).AsDouble(), 5.25);
}

}  // namespace
}  // namespace statcube
