// Unit tests for the lattice-aware result cache (statcube/cache): key
// canonicalization and dataset versioning, LRU/byte-budget eviction,
// cost-aware admission, derivation-source selection, epoch invalidation,
// and the statcube.cache.* metrics.

#include "statcube/cache/result_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "statcube/cache/derive.h"
#include "statcube/common/epoch.h"
#include "statcube/query/cache_key.h"
#include "statcube/obs/metrics.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

using query::BuildQueryKey;
using cache::Mode;
using cache::QueryKey;
using cache::ResultCache;

const StatisticalObject& Retail() {
  static StatisticalObject* obj = [] {
    RetailOptions opt;
    opt.num_products = 6;
    opt.num_stores = 4;
    opt.num_cities = 2;
    opt.num_days = 5;
    opt.num_rows = 500;
    return new StatisticalObject(
        MakeRetailWorkload(opt).ValueOrDie().object);
  }();
  return *obj;
}

QueryKey KeyFor(const std::string& text,
                QueryEngine engine = QueryEngine::kRelational,
                const StatisticalObject* obj = nullptr) {
  auto parsed = ParseQuery(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto key = BuildQueryKey(obj ? *obj : Retail(), *parsed, engine);
  EXPECT_TRUE(key.ok()) << key.status().ToString();
  return *key;
}

// A small result table shaped like a group-by output, `rows` rows.
Table FakeResult(const std::string& name, size_t rows) {
  Schema schema;
  schema.AddColumn("store", ValueType::kString);
  schema.AddColumn("sum_amount", ValueType::kDouble);
  Table t(name, schema);
  for (size_t i = 0; i < rows; ++i)
    t.AppendRowUnchecked({Value("store" + std::to_string(i)),
                          Value(double(i))});
  return t;
}

// --------------------------------------------------------------------------
// Mode parsing.

TEST(CacheMode, Names) {
  EXPECT_STREQ(cache::ModeName(Mode::kOff), "off");
  EXPECT_STREQ(cache::ModeName(Mode::kOn), "on");
  EXPECT_STREQ(cache::ModeName(Mode::kDerive), "derive");
  EXPECT_EQ(*cache::ModeFromName("ON"), Mode::kOn);
  EXPECT_EQ(*cache::ModeFromName("derive"), Mode::kDerive);
  EXPECT_EQ(*cache::ModeFromName("off"), Mode::kOff);
  EXPECT_FALSE(cache::ModeFromName("sometimes").ok());
}

// --------------------------------------------------------------------------
// Key canonicalization.

TEST(QueryKeyTest, WhereOrderDoesNotMatter) {
  QueryKey a = KeyFor(
      "SELECT sum(amount) BY store WHERE city = 'city1' AND product = 'prod1'");
  QueryKey b = KeyFor(
      "SELECT sum(amount) BY store WHERE product = 'prod1' AND city = 'city1'");
  EXPECT_EQ(a.exact, b.exact);
}

TEST(QueryKeyTest, ByOrderIsExactButSharesFamily) {
  QueryKey a = KeyFor("SELECT sum(amount) BY store, city");
  QueryKey b = KeyFor("SELECT sum(amount) BY city, store");
  EXPECT_NE(a.exact, b.exact);  // output column order differs
  EXPECT_EQ(a.family, b.family);  // but derivation may cross them
}

TEST(QueryKeyTest, EngineSeparatesFamilies) {
  QueryKey rel = KeyFor("SELECT sum(amount) BY store");
  QueryKey molap = KeyFor("SELECT sum(amount) BY store", QueryEngine::kMolap);
  EXPECT_NE(rel.family, molap.family);
  EXPECT_FALSE(rel.backend_shaped);
  EXPECT_TRUE(molap.backend_shaped);
}

TEST(QueryKeyTest, BackendShapePrediction) {
  // Hierarchy level in BY -> relational fallback shape even on molap.
  EXPECT_FALSE(
      KeyFor("SELECT sum(amount) BY city", QueryEngine::kMolap).backend_shaped);
  // Multi-aggregate -> fallback.
  EXPECT_FALSE(KeyFor("SELECT sum(amount), sum(qty) BY store",
                      QueryEngine::kMolap)
                   .backend_shaped);
  // Non-measure aggregate column -> backend build would fail -> fallback.
  EXPECT_FALSE(KeyFor("SELECT count() BY store", QueryEngine::kMolap)
                   .backend_shaped);
}

TEST(QueryKeyTest, DerivabilityGates) {
  EXPECT_TRUE(KeyFor("SELECT sum(amount), count(amount) BY store").derivable);
  EXPECT_TRUE(KeyFor("SELECT min(amount), max(amount) BY store").derivable);
  EXPECT_FALSE(KeyFor("SELECT avg(amount) BY store").derivable);
  EXPECT_FALSE(KeyFor("SELECT sum(amount) BY CUBE(store, city)").derivable);
}

TEST(QueryKeyTest, EpochChangesFamily) {
  QueryKey before = KeyFor("SELECT sum(amount) BY store");
  DataEpochs::Global().Bump(Retail().name());
  QueryKey after = KeyFor("SELECT sum(amount) BY store");
  EXPECT_NE(before.exact, after.exact);
  EXPECT_NE(before.family, after.family);
}

TEST(QueryKeyTest, AddCellBumpsEpoch) {
  StatisticalObject obj("epoch_probe");
  ASSERT_TRUE(obj.AddDimension(Dimension("d")).ok());
  ASSERT_TRUE(obj.AddMeasure({.name = "m"}).ok());
  uint64_t e0 = DataEpochs::Global().Of("epoch_probe");
  ASSERT_TRUE(obj.AddCell({Value("a")}, {Value(1.0)}).ok());
  EXPECT_GT(DataEpochs::Global().Of("epoch_probe"), e0);
  uint64_t e1 = DataEpochs::Global().Of("epoch_probe");
  obj.mutable_data();  // a mutable handle is conservatively a mutation
  EXPECT_GT(DataEpochs::Global().Of("epoch_probe"), e1);
}

TEST(QueryKeyTest, ValueTypeTagsDoNotCollide) {
  StatisticalObject obj("typed");
  ASSERT_TRUE(obj.AddDimension(Dimension("d")).ok());
  ASSERT_TRUE(obj.AddMeasure({.name = "m"}).ok());
  ASSERT_TRUE(obj.AddCell({Value("1")}, {Value(2.0)}).ok());
  auto parsed_str = ParseQuery("SELECT sum(m) WHERE d = '1'");
  auto parsed_num = ParseQuery("SELECT sum(m) WHERE d = 1");
  ASSERT_TRUE(parsed_str.ok() && parsed_num.ok());
  auto a = BuildQueryKey(obj, *parsed_str, QueryEngine::kRelational);
  auto b = BuildQueryKey(obj, *parsed_num, QueryEngine::kRelational);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->exact, b->exact);
}

// --------------------------------------------------------------------------
// The cache proper: insert/lookup, admission, eviction.

ResultCache::Options Tiny(size_t budget, size_t shards = 1) {
  ResultCache::Options o;
  o.byte_budget = budget;
  o.shards = shards;
  o.admit_min_us = 0;  // admit everything unless a test raises it
  o.max_entry_bytes = budget;
  return o;
}

TEST(ResultCacheTest, InsertThenExactHit) {
  ResultCache rc(Tiny(1 << 20));
  QueryKey key = KeyFor("SELECT sum(amount) BY store");
  Table result = FakeResult("r_by_store", 4);
  EXPECT_TRUE(rc.Insert(key, result, /*backend_answered=*/false, 1000));
  auto hit = rc.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ToString(100), result.ToString(100));
  auto s = rc.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(ResultCacheTest, MissOnDifferentKey) {
  ResultCache rc(Tiny(1 << 20));
  rc.Insert(KeyFor("SELECT sum(amount) BY store"), FakeResult("a", 2), false,
            1000);
  EXPECT_FALSE(rc.Lookup(KeyFor("SELECT sum(amount) BY city")).has_value());
  EXPECT_EQ(rc.stats().misses, 1u);
}

TEST(ResultCacheTest, AdmissionRejectsCheapResults) {
  ResultCache rc(Tiny(1 << 20));
  rc.set_admit_min_us(500);
  QueryKey key = KeyFor("SELECT sum(amount) BY store");
  EXPECT_FALSE(rc.Insert(key, FakeResult("a", 2), false, /*exec_us=*/10));
  EXPECT_FALSE(rc.Lookup(key).has_value());
  EXPECT_EQ(rc.stats().admission_rejects, 1u);
  // Expensive enough: admitted.
  EXPECT_TRUE(rc.Insert(key, FakeResult("a", 2), false, /*exec_us=*/5000));
  EXPECT_TRUE(rc.Lookup(key).has_value());
}

TEST(ResultCacheTest, AdmissionRejectsOversizeResults) {
  ResultCache::Options o = Tiny(1 << 20);
  o.max_entry_bytes = 64;  // smaller than any real table
  ResultCache rc(o);
  EXPECT_FALSE(rc.Insert(KeyFor("SELECT sum(amount) BY store"),
                         FakeResult("a", 100), false, 1000));
  EXPECT_EQ(rc.stats().admission_rejects, 1u);
  EXPECT_EQ(rc.entries(), 0u);
}

TEST(ResultCacheTest, LruEvictionUnderByteBudget) {
  // Budget that holds roughly two of the three entries (one shard so LRU
  // order is global).
  // Per-entry overhead beyond the table bytes: the exact-key string plus
  // the Entry struct — comfortably under 1 KiB.
  Table sample = FakeResult("x", 50);
  const size_t budget = 2 * (sample.ByteSize() + 1024);
  ResultCache rc(Tiny(budget, /*shards=*/1));
  QueryKey a = KeyFor("SELECT sum(amount) BY store");
  QueryKey b = KeyFor("SELECT sum(amount) BY city");
  QueryKey c = KeyFor("SELECT sum(amount) BY product");
  rc.Insert(a, FakeResult("a", 50), false, 1000);
  rc.Insert(b, FakeResult("b", 50), false, 1000);
  ASSERT_TRUE(rc.Lookup(a).has_value());  // refresh a; b is now LRU
  rc.Insert(c, FakeResult("c", 50), false, 1000);
  EXPECT_GT(rc.stats().evictions, 0u);
  EXPECT_FALSE(rc.Lookup(b).has_value()) << "LRU victim should be b";
  EXPECT_TRUE(rc.Lookup(a).has_value());
  EXPECT_TRUE(rc.Lookup(c).has_value());
  EXPECT_LE(rc.bytes(), budget);
}

TEST(ResultCacheTest, ClearEmptiesEverything) {
  ResultCache rc(Tiny(1 << 20));
  rc.Insert(KeyFor("SELECT sum(amount) BY store"), FakeResult("a", 5), false,
            1000);
  rc.Clear();
  EXPECT_EQ(rc.entries(), 0u);
  EXPECT_EQ(rc.bytes(), 0u);
  EXPECT_FALSE(rc.Lookup(KeyFor("SELECT sum(amount) BY store")).has_value());
}

// --------------------------------------------------------------------------
// Derivation-source selection.

TEST(ResultCacheTest, FindsSmallestSupersetOfSameShape) {
  ResultCache rc(Tiny(4 << 20));
  QueryKey fine = KeyFor("SELECT sum(amount) BY product, store, city");
  QueryKey mid = KeyFor("SELECT sum(amount) BY store, city");
  QueryKey want = KeyFor("SELECT sum(amount) BY store");
  rc.Insert(fine, FakeResult("r_by_product_store_city", 48), false, 1000);
  rc.Insert(mid, FakeResult("r_by_store_city", 8), false, 1000);
  auto src = rc.FindDerivationSource(want);
  ASSERT_TRUE(src.has_value());
  // The cheaper (fewer-rows) ancestor wins, like CheapestAncestor.
  EXPECT_EQ(src->result.name(), "r_by_store_city");
  EXPECT_EQ(src->by, mid.by);
  ASSERT_EQ(src->agg_fns.size(), 1u);
  EXPECT_EQ(src->agg_fns[0], AggFn::kSum);
  EXPECT_EQ(src->agg_cols[0], "sum_amount");
}

TEST(ResultCacheTest, NoDerivationAcrossShapes) {
  ResultCache rc(Tiny(4 << 20));
  // A relational-shaped entry must not serve a backend-shaped request.
  QueryKey rel_superset = KeyFor("SELECT sum(amount) BY store, city");
  rc.Insert(rel_superset, FakeResult("r_by_store_city", 8), false, 1000);
  QueryKey molap_want =
      KeyFor("SELECT sum(amount) BY store", QueryEngine::kMolap);
  EXPECT_FALSE(rc.FindDerivationSource(molap_want).has_value());
}

TEST(ResultCacheTest, NoDerivationForNonDistributive) {
  ResultCache rc(Tiny(4 << 20));
  rc.Insert(KeyFor("SELECT sum(amount) BY store, city"),
            FakeResult("r_by_store_city", 8), false, 1000);
  QueryKey avg = KeyFor("SELECT avg(amount) BY store");
  EXPECT_FALSE(rc.FindDerivationSource(avg).has_value());
  // And the subset relation must actually hold.
  QueryKey disjoint = KeyFor("SELECT sum(amount) BY product");
  EXPECT_FALSE(rc.FindDerivationSource(disjoint).has_value());
}

TEST(ResultCacheTest, EvictedEntriesLeaveTheIndex) {
  Table sample = FakeResult("x", 50);
  ResultCache rc(Tiny(sample.ByteSize() + 512, /*shards=*/1));
  QueryKey superset = KeyFor("SELECT sum(amount) BY store, city");
  rc.Insert(superset, FakeResult("r_by_store_city", 50), false, 1000);
  // A second insert evicts the first (budget holds one entry).
  rc.Insert(KeyFor("SELECT sum(amount) BY product, city"),
            FakeResult("r_by_product_city", 50), false, 1000);
  EXPECT_GT(rc.stats().evictions, 0u);
  QueryKey want = KeyFor("SELECT sum(amount) BY store");
  auto src = rc.FindDerivationSource(want);
  EXPECT_FALSE(src.has_value()) << "evicted superset must not be offered";
}

// --------------------------------------------------------------------------
// Metrics surface: counters appear under statcube.cache.* when obs is on.

TEST(ResultCacheTest, MetricsRegistered) {
  obs::EnabledScope enabled(true);
  ResultCache rc(Tiny(1 << 20));
  QueryKey key = KeyFor("SELECT sum(amount) BY store");
  auto& reg = obs::MetricsRegistry::Global();
  uint64_t hits0 = reg.GetCounter("statcube.cache.hits").Value();
  uint64_t misses0 = reg.GetCounter("statcube.cache.misses").Value();
  rc.Insert(key, FakeResult("a", 3), false, 1000);
  rc.Lookup(key);
  rc.Lookup(KeyFor("SELECT sum(amount) BY city"));
  EXPECT_EQ(reg.GetCounter("statcube.cache.hits").Value(), hits0 + 1);
  EXPECT_EQ(reg.GetCounter("statcube.cache.misses").Value(), misses0 + 1);
  EXPECT_GT(reg.GetGauge("statcube.cache.bytes").Value(), 0.0);
  std::string text = reg.TextSnapshot();
  EXPECT_NE(text.find("statcube.cache.hits"), std::string::npos);
}

// --------------------------------------------------------------------------
// Concurrency smoke (TSan target): concurrent lookups, inserts and
// derivation scans on one shared cache.

TEST(ResultCacheTest, ConcurrentMixedOperations) {
  ResultCache rc(Tiny(256 << 10, /*shards=*/4));
  const QueryKey keys[] = {
      KeyFor("SELECT sum(amount) BY store"),
      KeyFor("SELECT sum(amount) BY city"),
      KeyFor("SELECT sum(amount) BY store, city"),
      KeyFor("SELECT sum(amount) BY product, store"),
  };
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&rc, &keys, w] {
      for (int i = 0; i < 200; ++i) {
        const QueryKey& key = keys[(w + i) % 4];
        if (i % 3 == 0)
          rc.Insert(key, FakeResult("t_by_x", 10 + i % 7), false, 1000);
        else if (i % 3 == 1)
          rc.Lookup(key);
        else
          rc.FindDerivationSource(keys[w % 2]);
      }
    });
  }
  for (auto& t : workers) t.join();
  auto s = rc.stats();
  EXPECT_GT(s.inserts + s.hits + s.misses, 0u);
}

}  // namespace
}  // namespace statcube
