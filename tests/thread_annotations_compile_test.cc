// Compile-time contract test for the thread-safety annotation layer
// (common/thread_annotations.h + common/mutex.h), driven by
// thread_annotations_compile_test.sh:
//
//   1. Compiled as-is under `clang++ -Wthread-safety -Werror` it must be
//      CLEAN — the wrapper types (Mutex, MutexLock, CondVar) carry the
//      right capability attributes for correctly-locked code to pass.
//   2. Compiled with -DSTATCUBE_EXPECT_THREAD_SAFETY_ERROR it must FAIL —
//      each block below deliberately violates the lock discipline, proving
//      the analysis actually fires through the wrappers (an annotation
//      layer that never rejects anything is decorative).
//
// Under g++ the annotations expand to nothing and the driver skips
// (ctest SKIP_RETURN_CODE 77). Keep this file header-only-includes so the
// driver can -fsyntax-only it without linking the library.

#include "statcube/common/mutex.h"
#include "statcube/common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    statcube::MutexLock lock(mu_);
    balance_ += amount;
  }

  int Balance() {
    statcube::MutexLock lock(mu_);
    return balance_;
  }

  void TransferLocked(Account& to, int amount) STATCUBE_REQUIRES(mu_) {
    balance_ -= amount;
    to.Deposit(amount);
  }

  void Transfer(Account& to, int amount) STATCUBE_EXCLUDES(mu_) {
    statcube::MutexLock lock(mu_);
    TransferLocked(to, amount);
  }

  // Manual Lock/Unlock pairing must also satisfy the analysis.
  int DrainAndRead() {
    mu_.Lock();
    int v = balance_;
    balance_ = 0;
    mu_.Unlock();
    return v;
  }

#ifdef STATCUBE_EXPECT_THREAD_SAFETY_ERROR
  // Each of these is a distinct analysis failure mode; any one of them
  // must be enough to break the -Werror build.
  int ReadUnguarded() {
    return balance_;  // reading a GUARDED_BY field with no lock held
  }

  void CallRequiresUnlocked(Account& to) {
    TransferLocked(to, 1);  // calling a REQUIRES(mu_) method lock-free
  }

  void ForgetToUnlock() {
    mu_.Lock();
    ++balance_;
  }  // ACQUIRE with no matching RELEASE on this path
#endif

 private:
  statcube::Mutex mu_;
  int balance_ STATCUBE_GUARDED_BY(mu_) = 0;
};

// CondVar::Wait demands the mutex: waiting correctly must pass...
class Gate {
 public:
  void Open() {
    statcube::MutexLock lock(mu_);
    open_ = true;
    cv_.NotifyAll();
  }

  void Await() {
    statcube::MutexLock lock(mu_);
    while (!open_) cv_.Wait(mu_);
  }

#ifdef STATCUBE_EXPECT_THREAD_SAFETY_ERROR
  void AwaitWithoutLock() {
    while (!open_) cv_.Wait(mu_);  // REQUIRES(mu_) violated twice over
  }
#endif

 private:
  statcube::Mutex mu_;
  statcube::CondVar cv_;
  bool open_ STATCUBE_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Account a, b;
  a.Deposit(10);
  a.Transfer(b, 5);
  Gate g;
  g.Open();
  g.Await();
  return (a.DrainAndRead() == 5 && b.Balance() == 5) ? 0 : 1;
}
