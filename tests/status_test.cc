// Tests for Status / Result error propagation.

#include "statcube/common/status.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kNotSummarizable, StatusCode::kPrivacyRefused,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> HalveEven(int x) {
  if (x % 2) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalve(int x, int* out) {
  STATCUBE_ASSIGN_OR_RETURN(*out, HalveEven(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalve(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseHalve(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status FailThrough() {
  STATCUBE_RETURN_NOT_OK(Status::Internal("boom"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace statcube
