// Cache equivalence battery: the result cache must be invisible except for
// speed. For every workload (census, hmo, retail, stocks), engine
// (relational + the three cube backends) and thread count, the query path
// must produce BIT-identical tables with the cache off, cold (miss +
// insert), warm (exact hit) and derived (lattice roll-up from a cached
// superset) — including rendered output, table names and value types. Also
// covers epoch invalidation after appends and concurrent queriers sharing
// the global cache (TSan target).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "statcube/cache/result_cache.h"
#include "statcube/query/parser.h"
#include "statcube/workload/census.h"
#include "statcube/workload/hmo.h"
#include "statcube/workload/retail.h"
#include "statcube/workload/stocks.h"

namespace statcube {
namespace {

using cache::Mode;
using cache::ResultCache;

// Same bit-exact comparison as parallel_equivalence_test.
void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& what) {
  EXPECT_EQ(a.name(), b.name()) << what;
  ASSERT_TRUE(a.schema() == b.schema()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      const Value& x = a.row(i)[c];
      const Value& y = b.row(i)[c];
      ASSERT_EQ(x.type(), y.type()) << what << " row " << i << " col " << c;
      if (x.type() == ValueType::kDouble) {
        double dx = x.AsDouble(), dy = y.AsDouble();
        uint64_t bx, by;
        std::memcpy(&bx, &dx, sizeof bx);
        std::memcpy(&by, &dy, sizeof by);
        ASSERT_EQ(bx, by) << what << " row " << i << " col " << c << ": "
                          << dx << " vs " << dy;
      } else {
        ASSERT_TRUE(x == y) << what << " row " << i << " col " << c << ": "
                            << x.ToString() << " vs " << y.ToString();
      }
    }
  }
}

struct Workloads {
  StatisticalObject census, hmo, stocks;
  RetailData retail;

  static const Workloads& Get() {
    static Workloads* w = [] {
      auto* out = new Workloads();
      out->census = MakeCensusWorkload().ValueOrDie();
      out->hmo = MakeHmoWorkload().ValueOrDie();
      out->stocks = MakeStockWorkload().ValueOrDie();
      out->retail = MakeRetailWorkload().ValueOrDie();
      return out;
    }();
    return *w;
  }
};

QueryOptions Opts(Mode mode, QueryEngine engine = QueryEngine::kRelational,
                  int threads = 1) {
  QueryOptions o;
  o.engine = engine;
  o.threads = threads;
  o.cache = mode;
  o.record = false;  // keep the flight recorder out of the picture
  return o;
}

// Tests share the process-global cache QueryProfiled consults; admit
// everything (these queries run in microseconds) and start each scenario
// cold.
void ResetCache() {
  ResultCache::Global().set_admit_min_us(0);
  ResultCache::Global().Clear();
}

ProfiledQuery RunQ(const StatisticalObject& obj, const std::string& text,
                  const QueryOptions& opt, const std::string& what) {
  auto r = QueryProfiled(obj, text, opt);
  EXPECT_TRUE(r.ok()) << what << ": " << r.status().ToString();
  return *std::move(r);
}

// Off / cold / warm for one (object, query, engine, threads) combination.
void ExpectOffColdWarmIdentical(const StatisticalObject& obj,
                                const std::string& text, QueryEngine engine,
                                int threads) {
  const std::string what = text + " engine=" + QueryEngineName(engine) +
                           " threads=" + std::to_string(threads);
  ProfiledQuery off = RunQ(obj, text, Opts(Mode::kOff, engine, threads), what);
  EXPECT_TRUE(off.profile.cache.empty()) << what;

  ResetCache();
  ProfiledQuery cold = RunQ(obj, text, Opts(Mode::kOn, engine, threads), what);
  EXPECT_EQ(cold.profile.cache, "miss") << what;
  ExpectTablesIdentical(off.table, cold.table, what + " [cold]");
  EXPECT_EQ(off.rendered, cold.rendered) << what;

  ProfiledQuery warm = RunQ(obj, text, Opts(Mode::kOn, engine, threads), what);
  EXPECT_EQ(warm.profile.cache, "hit") << what;
  EXPECT_EQ(warm.profile.backend, "cache") << what;
  ExpectTablesIdentical(off.table, warm.table, what + " [warm]");
  EXPECT_EQ(off.rendered, warm.rendered) << what;
}

// Seeds the cache with `seed` and expects `text` to be answered by
// derivation, bit-identical to direct execution.
void ExpectDerivedIdentical(const StatisticalObject& obj,
                            const std::string& seed, const std::string& text,
                            QueryEngine engine, int threads) {
  const std::string what = text + " from [" + seed +
                           "] engine=" + QueryEngineName(engine) +
                           " threads=" + std::to_string(threads);
  ProfiledQuery off = RunQ(obj, text, Opts(Mode::kOff, engine, threads), what);

  ResetCache();
  RunQ(obj, seed, Opts(Mode::kDerive, engine, threads), what + " [seed]");
  ProfiledQuery derived =
      RunQ(obj, text, Opts(Mode::kDerive, engine, threads), what);
  EXPECT_EQ(derived.profile.cache, "derived") << what;
  EXPECT_EQ(derived.profile.backend, "cache") << what;
  ExpectTablesIdentical(off.table, derived.table, what + " [derived]");
  EXPECT_EQ(off.rendered, derived.rendered) << what;
}

// --------------------------------------------------------------------------
// Off / cold / warm across the four workloads (relational engine; the full
// §5.1 battery including rollup levels, CUBE and non-distributive aggs).

TEST(CacheEquivalence, RetailOffColdWarm) {
  const auto& obj = Workloads::Get().retail.object;
  for (const char* q : {
           "SELECT sum(amount) BY city",
           "SELECT sum(qty), avg(amount) BY category",
           "SELECT sum(amount) BY month WHERE city = 'city1'",
           "SELECT sum(amount) BY CUBE(city, month)",
           "SELECT count() WHERE price_range = 'premium'",
       })
    for (int t : {1, 4})
      ExpectOffColdWarmIdentical(obj, q, QueryEngine::kRelational, t);
}

TEST(CacheEquivalence, CensusOffColdWarm) {
  const auto& obj = Workloads::Get().census;
  for (const char* q : {
           "SELECT sum(population) BY race",
           "SELECT sum(population) BY CUBE(race, sex)",
           "SELECT sum(population) BY age_group WHERE sex = 'M'",
       })
    for (int t : {1, 4})
      ExpectOffColdWarmIdentical(obj, q, QueryEngine::kRelational, t);
}

TEST(CacheEquivalence, HmoOffColdWarm) {
  const auto& obj = Workloads::Get().hmo;
  for (const char* q : {
           "SELECT sum(cost), sum(visits) BY hospital",
           "SELECT sum(cost) BY CUBE(hospital, month)",
           "SELECT sum(visits) BY disease",
       })
    for (int t : {1, 4})
      ExpectOffColdWarmIdentical(obj, q, QueryEngine::kRelational, t);
}

TEST(CacheEquivalence, StocksOffColdWarm) {
  const auto& obj = Workloads::Get().stocks;
  for (const char* q : {
           "SELECT sum(volume) BY stock",
           "SELECT avg(close) BY stock",
           "SELECT sum(volume) BY CUBE(stock, day)",
       })
    for (int t : {1, 4})
      ExpectOffColdWarmIdentical(obj, q, QueryEngine::kRelational, t);
}

// --------------------------------------------------------------------------
// The three cube backends: exact reuse and derived roll-ups must reproduce
// each backend's own output shape (MOLAP's full cross product with zero
// groups included, ROLAP's observed-groups table) bit-for-bit.

TEST(CacheEquivalence, BackendsOffColdWarm) {
  const auto& obj = Workloads::Get().retail.object;
  for (QueryEngine engine : {QueryEngine::kMolap, QueryEngine::kRolap,
                             QueryEngine::kRolapBitmap}) {
    for (const char* q : {
             "SELECT sum(amount) BY store",
             "SELECT sum(amount) BY product, store",
             "SELECT sum(amount) BY store WHERE product = 'prod1'",
             "SELECT sum(amount)",
             // Not backend-expressible: falls back to relational shape, and
             // the cached entry must reproduce that fallback exactly.
             "SELECT sum(amount) BY city",
         })
      for (int t : {1, 4}) ExpectOffColdWarmIdentical(obj, q, engine, t);
  }
}

TEST(CacheEquivalence, BackendsDerived) {
  const auto& obj = Workloads::Get().retail.object;
  for (QueryEngine engine : {QueryEngine::kMolap, QueryEngine::kRolap,
                             QueryEngine::kRolapBitmap}) {
    for (int t : {1, 4}) {
      ExpectDerivedIdentical(obj, "SELECT sum(amount) BY product, store",
                             "SELECT sum(amount) BY store", engine, t);
      ExpectDerivedIdentical(obj, "SELECT sum(amount) BY product, store",
                             "SELECT sum(amount)", engine, t);
      ExpectDerivedIdentical(
          obj, "SELECT sum(amount) BY store, day WHERE product = 'prod2'",
          "SELECT sum(amount) BY day WHERE product = 'prod2'", engine, t);
    }
  }
}

// --------------------------------------------------------------------------
// Relational derivation: subsets, permutations, multi-aggregate roll-ups
// (sum + count re-finalized to int64, min/max), hierarchy levels.

TEST(CacheEquivalence, RelationalDerivedSubsets) {
  const auto& w = Workloads::Get();
  for (int t : {1, 4}) {
    ExpectDerivedIdentical(w.census, "SELECT sum(population) BY race, sex",
                           "SELECT sum(population) BY race",
                           QueryEngine::kRelational, t);
    // Permutation of the same grouping set: exact keys differ, the family
    // derivation still applies.
    ExpectDerivedIdentical(w.census, "SELECT sum(population) BY race, sex",
                           "SELECT sum(population) BY sex, race",
                           QueryEngine::kRelational, t);
    ExpectDerivedIdentical(
        w.hmo, "SELECT sum(cost), count(cost) BY hospital, month",
        "SELECT sum(cost), count(cost) BY hospital",
        QueryEngine::kRelational, t);
    ExpectDerivedIdentical(
        w.stocks, "SELECT min(close), max(close), count() BY stock, day",
        "SELECT min(close), max(close), count() BY stock",
        QueryEngine::kRelational, t);
    // Hierarchy levels: the cached superset already carries the derived
    // level columns.
    ExpectDerivedIdentical(w.retail.object,
                           "SELECT sum(amount) BY city, month",
                           "SELECT sum(amount) BY city",
                           QueryEngine::kRelational, t);
    // WHERE must carry over into the family.
    ExpectDerivedIdentical(
        w.retail.object,
        "SELECT sum(qty) BY category, store WHERE city = 'city1'",
        "SELECT sum(qty) BY category WHERE city = 'city1'",
        QueryEngine::kRelational, t);
  }
}

TEST(CacheEquivalence, NonDistributiveNeverDerives) {
  const auto& obj = Workloads::Get().stocks;
  ResetCache();
  QueryOptions d = Opts(Mode::kDerive);
  RunQ(obj, "SELECT avg(close) BY stock, day", d, "seed");
  ProfiledQuery pq = RunQ(obj, "SELECT avg(close) BY stock", d, "avg subset");
  EXPECT_EQ(pq.profile.cache, "miss");
  ProfiledQuery off = RunQ(obj, "SELECT avg(close) BY stock",
                          Opts(Mode::kOff), "avg direct");
  ExpectTablesIdentical(off.table, pq.table, "avg never derived");
}

// --------------------------------------------------------------------------
// Invalidation: an append moves the epoch, so warm entries stop matching
// and the fresh result reflects the new data.

TEST(CacheEquivalence, AppendInvalidates) {
  auto data = MakeRetailWorkload().ValueOrDie();
  StatisticalObject obj = std::move(data.object);
  const std::string q = "SELECT sum(qty) BY store";
  ResetCache();
  ProfiledQuery cold = RunQ(obj, q, Opts(Mode::kOn), "cold");
  EXPECT_EQ(cold.profile.cache, "miss");
  ProfiledQuery warm = RunQ(obj, q, Opts(Mode::kOn), "warm");
  EXPECT_EQ(warm.profile.cache, "hit");

  // Append one sale; the warm entry must not be served again.
  Row dims, measures;
  dims.push_back(obj.data().row(0)[0]);  // product
  dims.push_back(obj.data().row(0)[1]);  // store
  dims.push_back(obj.data().row(0)[2]);  // day
  measures.push_back(Value(int64_t(1000000)));  // qty
  measures.push_back(Value(int64_t(9)));        // amount
  ASSERT_TRUE(obj.AddCell(dims, measures).ok());

  ProfiledQuery after = RunQ(obj, q, Opts(Mode::kOn), "after append");
  EXPECT_EQ(after.profile.cache, "miss") << "stale entry served after append";
  ProfiledQuery direct = RunQ(obj, q, Opts(Mode::kOff), "direct after append");
  ExpectTablesIdentical(direct.table, after.table, "post-append");
  // And the totals actually moved.
  EXPECT_NE(cold.rendered, after.rendered);
}

// --------------------------------------------------------------------------
// Concurrent queriers on the shared global cache: every answer — hit,
// derived or computed — must equal the precomputed baseline. TSan covers
// the lookup/insert/derive races.

TEST(CacheEquivalence, ConcurrentQueriersBitIdentical) {
  const auto& w = Workloads::Get();
  struct Case {
    const StatisticalObject* obj;
    const char* text;
    QueryEngine engine;
  };
  const std::vector<Case> cases = {
      {&w.retail.object, "SELECT sum(amount) BY product, store",
       QueryEngine::kMolap},
      {&w.retail.object, "SELECT sum(amount) BY store", QueryEngine::kMolap},
      {&w.retail.object, "SELECT sum(amount) BY store", QueryEngine::kRolap},
      {&w.retail.object, "SELECT sum(qty) BY city, month",
       QueryEngine::kRelational},
      {&w.retail.object, "SELECT sum(qty) BY city", QueryEngine::kRelational},
      {&w.census, "SELECT sum(population) BY race, sex",
       QueryEngine::kRelational},
      {&w.census, "SELECT sum(population) BY sex", QueryEngine::kRelational},
      {&w.stocks, "SELECT sum(volume) BY stock", QueryEngine::kRelational},
  };
  // Baselines with the cache off.
  std::vector<std::string> baseline;
  for (const Case& c : cases)
    baseline.push_back(
        RunQ(*c.obj, c.text, Opts(Mode::kOff, c.engine), c.text).rendered);

  ResetCache();
  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        size_t n = size_t(t + i) % cases.size();
        const Case& c = cases[n];
        auto r = QueryProfiled(*c.obj, c.text,
                               Opts(Mode::kDerive, c.engine, 1 + t % 2));
        if (!r.ok() || r->rendered != baseline[n])
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  auto s = ResultCache::Global().stats();
  EXPECT_GT(s.hits + s.derived_hits, 0u) << "cache never hit under load";
}

}  // namespace
}  // namespace statcube
