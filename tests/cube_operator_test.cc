// Tests for the CUBE / ROLLUP operators (paper §5.4, Figure 15): the ALL
// pseudo-value, agreement between the naive and simultaneous
// implementations, and grand totals.

#include "statcube/relational/cube_operator.h"

#include <gtest/gtest.h>

#include "statcube/common/rng.h"
#include "statcube/relational/expression.h"
#include "statcube/relational/operators.h"

namespace statcube {
namespace {

Table MakeSales(int n, int nstates, int nyears, uint64_t seed) {
  Schema s;
  s.AddColumn("state", ValueType::kString);
  s.AddColumn("year", ValueType::kInt64);
  s.AddColumn("sex", ValueType::kString);
  s.AddColumn("pop", ValueType::kInt64);
  Table t("sales", s);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    t.AppendRowUnchecked(
        {Value("st" + std::to_string(rng.Uniform(uint64_t(nstates)))),
         Value(int64_t(1990 + rng.Uniform(uint64_t(nyears)))),
         Value(rng.Bernoulli(0.5) ? "M" : "F"),
         Value(int64_t(rng.Uniform(1000)))});
  }
  return t;
}

TEST(CubeOperatorTest, RowCountsSmall) {
  // 2 states x 2 years known exactly: cube rows = (2+1)*(2+1) when all
  // combinations occur.
  Table t = MakeSales(500, 2, 2, 1);
  auto cube = CubeBy(t, {"state", "year"}, {{AggFn::kSum, "pop", "total"}});
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->num_rows(), 9u);
}

TEST(CubeOperatorTest, GrandTotalPresent) {
  Table t = MakeSales(300, 3, 2, 2);
  auto cube = CubeBy(t, {"state", "year", "sex"},
                     {{AggFn::kSum, "pop", "total"}, {AggFn::kCountAll, "", "n"}});
  ASSERT_TRUE(cube.ok());
  // Find the ALL/ALL/ALL row.
  double direct_total = 0;
  for (const Row& r : t.rows()) direct_total += r[3].AsDouble();
  bool found = false;
  for (const Row& r : cube->rows()) {
    if (r[0].is_all() && r[1].is_all() && r[2].is_all()) {
      found = true;
      EXPECT_DOUBLE_EQ(r[3].AsDouble(), direct_total);
      EXPECT_EQ(r[4], Value(300));
    }
  }
  EXPECT_TRUE(found);
}

TEST(CubeOperatorTest, NaiveAndSimultaneousAgree) {
  Table t = MakeSales(2000, 4, 3, 3);
  std::vector<AggSpec> aggs = {{AggFn::kSum, "pop", "s"},
                               {AggFn::kAvg, "pop", "a"},
                               {AggFn::kMin, "pop", "lo"},
                               {AggFn::kMax, "pop", "hi"},
                               {AggFn::kCountAll, "", "n"}};
  auto naive = CubeByNaive(t, {"state", "year", "sex"}, aggs);
  auto fast = CubeBy(t, {"state", "year", "sex"}, aggs);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(fast.ok());
  ASSERT_EQ(naive->num_rows(), fast->num_rows());
  for (size_t i = 0; i < naive->num_rows(); ++i) {
    for (size_t c = 0; c < naive->num_columns(); ++c) {
      if (naive->at(i, c).is_numeric()) {
        EXPECT_NEAR(naive->at(i, c).AsDouble(), fast->at(i, c).AsDouble(),
                    1e-6)
            << "row " << i << " col " << c;
      } else {
        EXPECT_EQ(naive->at(i, c), fast->at(i, c)) << "row " << i;
      }
    }
  }
}

TEST(CubeOperatorTest, CubeMatchesExplicitGroupBys) {
  // Each (state, ALL) row must equal GROUP BY state.
  Table t = MakeSales(800, 3, 3, 4);
  auto cube = CubeBy(t, {"state", "year"}, {{AggFn::kSum, "pop", "total"}});
  ASSERT_TRUE(cube.ok());
  auto by_state = GroupBy(t, {"state"}, {{AggFn::kSum, "pop", "total"}});
  ASSERT_TRUE(by_state.ok());
  for (const Row& g : by_state->rows()) {
    bool found = false;
    for (const Row& c : cube->rows()) {
      if (c[0] == g[0] && c[1].is_all()) {
        found = true;
        EXPECT_DOUBLE_EQ(c[2].AsDouble(), g[1].AsDouble());
      }
    }
    EXPECT_TRUE(found) << g[0].ToString();
  }
}

TEST(CubeOperatorTest, RollupProducesPrefixGroupings) {
  Table t = MakeSales(400, 2, 2, 5);
  auto rollup = RollupBy(t, {"state", "year"}, {{AggFn::kSum, "pop", "t"}});
  ASSERT_TRUE(rollup.ok());
  // Groupings: (state, year) = 4 rows, (state) = 2 rows, () = 1 row.
  EXPECT_EQ(rollup->num_rows(), 7u);
  // (state, ALL) rows exist; (ALL, year) rows must NOT exist.
  for (const Row& r : rollup->rows()) {
    if (r[0].is_all()) {
      EXPECT_TRUE(r[1].is_all());
    }
  }
}

TEST(CubeOperatorTest, ZeroDimensionCube) {
  Table t = MakeSales(50, 2, 2, 6);
  auto cube = CubeBy(t, {}, {{AggFn::kCountAll, "", "n"}});
  ASSERT_TRUE(cube.ok());
  ASSERT_EQ(cube->num_rows(), 1u);
  EXPECT_EQ(cube->at(0, 0), Value(50));
}

TEST(CubeOperatorTest, UpperBound) {
  EXPECT_EQ(CubeUpperBound({2, 3}), 12u);
  EXPECT_EQ(CubeUpperBound({}), 1u);
}

TEST(CubeOperatorTest, RefusesHugeDimensionLists) {
  Table t = MakeSales(10, 2, 2, 7);
  std::vector<std::string> dims(21, "state");
  EXPECT_FALSE(CubeByNaive(t, dims, {{AggFn::kCountAll, "", "n"}}).ok());
  EXPECT_FALSE(CubeBy(t, dims, {{AggFn::kCountAll, "", "n"}}).ok());
}

}  // namespace
}  // namespace statcube
