// Tests for the Figure 12 / Figure 14 terminology correspondence.

#include "statcube/core/terminology.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

TEST(TerminologyTest, StructuralTableMatchesFigure12) {
  const auto& t = StructuralTerms();
  EXPECT_EQ(t.size(), 7u);
  auto sdb = SdbTermFor("Dimension");
  ASSERT_TRUE(sdb.ok());
  EXPECT_EQ(*sdb, "Category Attribute");
  auto olap = OlapTermFor("Statistical Object");
  ASSERT_TRUE(olap.ok());
  EXPECT_EQ(*olap, "Data Cube (fact table)");
}

TEST(TerminologyTest, OperatorTableMatchesFigure14) {
  auto sdb = SdbTermFor("Slice");
  ASSERT_TRUE(sdb.ok());
  EXPECT_EQ(*sdb, "S-projection");
  sdb = SdbTermFor("Dice");
  ASSERT_TRUE(sdb.ok());
  EXPECT_EQ(*sdb, "S-selection");
  sdb = SdbTermFor("Roll up (consolidation)");
  ASSERT_TRUE(sdb.ok());
  EXPECT_EQ(*sdb, "S-aggregation");
  sdb = SdbTermFor("Drill down");
  ASSERT_TRUE(sdb.ok());
  EXPECT_EQ(*sdb, "S-disaggregation");
}

TEST(TerminologyTest, RoundTrip) {
  for (const auto& pair : StructuralTerms()) {
    auto sdb = SdbTermFor(pair.olap);
    ASSERT_TRUE(sdb.ok());
    auto olap = OlapTermFor(*sdb);
    ASSERT_TRUE(olap.ok());
    EXPECT_EQ(*olap, pair.olap);
  }
}

TEST(TerminologyTest, UnknownTermsError) {
  EXPECT_FALSE(SdbTermFor("Hypercube").ok());
  EXPECT_FALSE(OlapTermFor("Nonsense").ok());
}

}  // namespace
}  // namespace statcube
