// Tests for the S-operators / OLAP operators and their Figure 14
// correspondences, including the double-counting behaviour on non-strict
// hierarchies that summarizability enforcement prevents.

#include "statcube/olap/operators.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

// Employment by sex x year x profession (profession classified).
StatisticalObject MakeEmployment() {
  StatisticalObject obj("employment");
  EXPECT_TRUE(obj.AddDimension(Dimension("sex")).ok());
  EXPECT_TRUE(
      obj.AddDimension(Dimension("year", DimensionKind::kTemporal)).ok());
  Dimension prof("profession");
  ClassificationHierarchy h("by_class", {"profession", "professional_class"});
  EXPECT_TRUE(h.Link(0, Value("chemical eng"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("civil eng"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("junior sec"), Value("secretary")).ok());
  h.DeclareComplete(0, "employment");
  prof.AddHierarchy(h);
  EXPECT_TRUE(obj.AddDimension(prof).ok());
  EXPECT_TRUE(obj.AddMeasure(
                     {"employment", "", MeasureType::kStock, AggFn::kSum, ""})
                  .ok());
  int64_t v = 0;
  for (const char* sex : {"M", "F"})
    for (int year : {1990, 1991})
      for (const char* p : {"chemical eng", "civil eng", "junior sec"})
        EXPECT_TRUE(
            obj.AddCell({Value(sex), Value(year), Value(p)}, {Value(v += 10)})
                .ok());
  return obj;  // cells 10..120, total 780
}

double TotalMeasure(const StatisticalObject& obj, const std::string& m) {
  size_t idx = *obj.data().schema().IndexOf(m);
  double t = 0;
  for (const Row& r : obj.data().rows()) t += r[idx].AsDouble();
  return t;
}

TEST(SSelectTest, KeepsOnlySelectedValues) {
  auto obj = MakeEmployment();
  auto sel = SSelect(obj, "sex", {Value("F")});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->data().num_rows(), 6u);
  EXPECT_EQ(sel->dimensions().size(), 3u);
  // Hierarchies carried over.
  auto prof = sel->DimensionNamed("profession");
  ASSERT_TRUE(prof.ok());
  EXPECT_EQ((*prof)->hierarchies().size(), 1u);
  // F cells are 70..120 -> total 570.
  EXPECT_DOUBLE_EQ(TotalMeasure(*sel, "employment"), 570.0);
  EXPECT_FALSE(SSelect(obj, "ghost", {Value(1)}).ok());
}

TEST(DiceTest, MultiDimensionSelection) {
  auto obj = MakeEmployment();
  auto d = Dice(obj, {{"sex", {Value("M")}},
                      {"profession", {Value("civil eng"), Value("junior sec")}}});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->data().num_rows(), 4u);
}

TEST(SProjectTest, RemovesDimensionAndAggregates) {
  auto obj = MakeEmployment();
  auto p = SProject(obj, "sex");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->dimensions().size(), 2u);
  EXPECT_EQ(p->data().num_rows(), 6u);  // 2 years x 3 professions
  EXPECT_DOUBLE_EQ(TotalMeasure(*p, "employment"), 780.0);
}

TEST(SProjectTest, EnforcementBlocksStockOverTime) {
  auto obj = MakeEmployment();
  // Summing a stock measure (employment headcount) over years is
  // meaningless; enforcement refuses.
  auto p = SProject(obj, "year");
  EXPECT_EQ(p.status().code(), StatusCode::kNotSummarizable);
  // Explicitly overriding executes anyway.
  auto forced = SProject(obj, "year", {.enforce_summarizability = false});
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(forced->dimensions().size(), 2u);
}

TEST(SliceAtTest, FixesSingleValue) {
  auto obj = MakeEmployment();
  auto s = SliceAt(obj, "year", Value(1990));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->dimensions().size(), 3u);  // dimension kept as singleton
  EXPECT_EQ(s->data().num_rows(), 6u);
  auto year = s->DimensionNamed("year");
  ASSERT_TRUE(year.ok());
  EXPECT_EQ((*year)->cardinality(), 1u);
}

TEST(SAggregateTest, RollsUpStrictHierarchy) {
  auto obj = MakeEmployment();
  auto r = SAggregate(obj, "profession", "by_class", 1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Dimension renamed to the level attribute.
  auto dim = r->DimensionNamed("professional_class");
  ASSERT_TRUE(dim.ok());
  EXPECT_EQ((*dim)->cardinality(), 2u);  // engineer, secretary
  // 2 sexes x 2 years x 2 classes = 8 cells; total preserved.
  EXPECT_EQ(r->data().num_rows(), 8u);
  EXPECT_DOUBLE_EQ(TotalMeasure(*r, "employment"), 780.0);
}

TEST(SAggregateTest, RollUpIsOneLevel) {
  auto obj = MakeEmployment();
  auto r1 = RollUp(obj, "profession", "by_class");
  auto r2 = SAggregate(obj, "profession", "by_class", 1);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->data().num_rows(), r2->data().num_rows());
}

TEST(SAggregateTest, NonStrictDoubleCountsWhenForced) {
  // The §3.3.2 example: physicians with multiple specialties counted
  // multiple times when summing over specialty groups.
  StatisticalObject obj("physicians");
  Dimension spec("specialty");
  ClassificationHierarchy h("spec_group", {"specialty", "group"});
  EXPECT_TRUE(h.Link(0, Value("oncology"), Value("internal")).ok());
  EXPECT_TRUE(h.Link(0, Value("oncology"), Value("surgery")).ok());  // both!
  EXPECT_TRUE(h.Link(0, Value("cardiology"), Value("internal")).ok());
  h.DeclareComplete(0, "physicians");
  spec.AddHierarchy(h);
  ASSERT_TRUE(obj.AddDimension(spec).ok());
  ASSERT_TRUE(obj.AddMeasure(
                   {"physicians", "", MeasureType::kFlow, AggFn::kSum, ""})
                  .ok());
  ASSERT_TRUE(obj.AddCell({Value("oncology")}, {Value(10)}).ok());
  ASSERT_TRUE(obj.AddCell({Value("cardiology")}, {Value(5)}).ok());

  // Enforcement catches it.
  auto refused = SAggregate(obj, "specialty", "spec_group", 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kNotSummarizable);

  // Forcing reproduces the double count: 10 oncologists appear under both
  // groups; the "total over all groups" would be 25, not 15.
  auto forced = SAggregate(obj, "specialty", "spec_group", 1,
                           {.enforce_summarizability = false});
  ASSERT_TRUE(forced.ok());
  EXPECT_DOUBLE_EQ(TotalMeasure(*forced, "physicians"), 25.0);
}

TEST(SAggregateTest, MultiLevelRollup) {
  StatisticalObject obj("sales");
  Dimension day("day", DimensionKind::kTemporal);
  ClassificationHierarchy cal("calendar", {"day", "month", "year"});
  for (int m = 1; m <= 2; ++m) {
    for (int d = 1; d <= 2; ++d) {
      std::string ds = "m" + std::to_string(m) + "d" + std::to_string(d);
      EXPECT_TRUE(cal.Link(0, Value(ds), Value("m" + std::to_string(m))).ok());
    }
    EXPECT_TRUE(cal.Link(1, Value("m" + std::to_string(m)), Value("y1")).ok());
  }
  cal.DeclareComplete(0, "qty");
  cal.DeclareComplete(1, "qty");
  day.AddHierarchy(cal);
  ASSERT_TRUE(obj.AddDimension(day).ok());
  ASSERT_TRUE(
      obj.AddMeasure({"qty", "dollars", MeasureType::kFlow, AggFn::kSum, ""})
          .ok());
  int v = 0;
  for (const char* d : {"m1d1", "m1d2", "m2d1", "m2d2"})
    ASSERT_TRUE(obj.AddCell({Value(d)}, {Value(++v)}).ok());

  auto to_year = SAggregate(obj, "day", "calendar", 2);
  ASSERT_TRUE(to_year.ok()) << to_year.status().ToString();
  EXPECT_EQ(to_year->data().num_rows(), 1u);
  EXPECT_DOUBLE_EQ(TotalMeasure(*to_year, "qty"), 10.0);
  // The truncated hierarchy (month level upward) is gone at year level, but
  // rolling to month retains month -> year.
  auto to_month = SAggregate(obj, "day", "calendar", 1);
  ASSERT_TRUE(to_month.ok());
  auto dim = to_month->DimensionNamed("month");
  ASSERT_TRUE(dim.ok());
  ASSERT_EQ((*dim)->hierarchies().size(), 1u);
  EXPECT_EQ((*dim)->hierarchies()[0].num_levels(), 2u);
  // Roll the rolled-up object further: month -> year.
  auto again = SAggregate(*to_month, "month", "calendar", 1,
                          {.enforce_summarizability = false});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_DOUBLE_EQ(TotalMeasure(*again, "qty"), 10.0);
}

TEST(DrillDownTest, RederivesFinerViewFromBase) {
  auto obj = MakeEmployment();
  auto coarse = SAggregate(obj, "profession", "by_class", 1);
  ASSERT_TRUE(coarse.ok());
  // Drill back down using the base.
  auto fine = DrillDown(obj, "profession", "by_class", 0);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(fine->data().num_rows(), obj.data().num_rows());
}

TEST(SUnionTest, MergesDisjointObjects) {
  // Two "pages": California and Nevada (the Figure 1(iii) observation).
  StatisticalObject ca("ca"), nv("nv");
  for (auto* o : {&ca, &nv}) {
    ASSERT_TRUE(o->AddDimension(Dimension("state")).ok());
    ASSERT_TRUE(o->AddDimension(Dimension("sex")).ok());
    ASSERT_TRUE(o->AddMeasure(
                     {"pop", "", MeasureType::kStock, AggFn::kSum, ""})
                    .ok());
  }
  ASSERT_TRUE(ca.AddCell({Value("CA"), Value("M")}, {Value(10)}).ok());
  ASSERT_TRUE(ca.AddCell({Value("CA"), Value("F")}, {Value(11)}).ok());
  ASSERT_TRUE(nv.AddCell({Value("NV"), Value("M")}, {Value(3)}).ok());
  auto u = SUnion(ca, nv);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->data().num_rows(), 3u);
  EXPECT_DOUBLE_EQ(TotalMeasure(*u, "pop"), 24.0);
}

TEST(SUnionTest, OverlappingCellsAggregate) {
  StatisticalObject a("a"), b("b");
  for (auto* o : {&a, &b}) {
    ASSERT_TRUE(o->AddDimension(Dimension("k")).ok());
    ASSERT_TRUE(
        o->AddMeasure({"n", "", MeasureType::kFlow, AggFn::kSum, ""}).ok());
  }
  ASSERT_TRUE(a.AddCell({Value("x")}, {Value(5)}).ok());
  ASSERT_TRUE(b.AddCell({Value("x")}, {Value(7)}).ok());
  auto u = SUnion(a, b);
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->data().num_rows(), 1u);
  EXPECT_DOUBLE_EQ(TotalMeasure(*u, "n"), 12.0);
}

TEST(SUnionTest, StructuralMismatchRejected) {
  StatisticalObject a("a"), b("b");
  ASSERT_TRUE(a.AddDimension(Dimension("k")).ok());
  ASSERT_TRUE(b.AddDimension(Dimension("different")).ok());
  ASSERT_TRUE(
      a.AddMeasure({"n", "", MeasureType::kFlow, AggFn::kSum, ""}).ok());
  ASSERT_TRUE(
      b.AddMeasure({"n", "", MeasureType::kFlow, AggFn::kSum, ""}).ok());
  EXPECT_FALSE(SUnion(a, b).ok());
}

TEST(SDisaggregateTest, ProxySplitsAdditiveMeasures) {
  // The §5.3 example: population known per state, disaggregate to counties
  // by area proxy.
  StatisticalObject obj("pop");
  ASSERT_TRUE(
      obj.AddDimension(Dimension("state", DimensionKind::kSpatial)).ok());
  ASSERT_TRUE(obj.AddDimension(Dimension("year", DimensionKind::kTemporal)).ok());
  ASSERT_TRUE(obj.AddMeasure(
                   {"population", "", MeasureType::kStock, AggFn::kSum, ""})
                  .ok());
  ASSERT_TRUE(obj.AddMeasure({"avg_income", "dollars",
                              MeasureType::kValuePerUnit, AggFn::kAvg, ""})
                  .ok());
  ASSERT_TRUE(
      obj.AddCell({Value("CA"), Value(1990)}, {Value(1000), Value(50.0)}).ok());
  ASSERT_TRUE(
      obj.AddCell({Value("NV"), Value(1990)}, {Value(100), Value(40.0)}).ok());

  std::vector<ProxyChild> counties = {{Value("ca1"), Value("CA"), 1.0},
                                      {Value("ca2"), Value("CA"), 3.0},
                                      {Value("nv1"), Value("NV"), 2.0}};
  auto fine = SDisaggregateByProxy(obj, "state", "county", counties);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_EQ(fine->data().num_rows(), 3u);
  auto dim = fine->DimensionNamed("county");
  ASSERT_TRUE(dim.ok());
  EXPECT_EQ((*dim)->kind(), DimensionKind::kSpatial);

  size_t pi = *fine->data().schema().IndexOf("population");
  size_t ai = *fine->data().schema().IndexOf("avg_income");
  double total = 0;
  for (const Row& r : fine->data().rows()) {
    total += r[pi].AsDouble();
    if (r[0] == Value("ca1")) {
      EXPECT_DOUBLE_EQ(r[pi].AsDouble(), 250.0);  // 1000 * 1/4
      EXPECT_DOUBLE_EQ(r[ai].AsDouble(), 50.0);   // rates copy, not split
    }
    if (r[0] == Value("nv1")) EXPECT_DOUBLE_EQ(r[pi].AsDouble(), 100.0);
  }
  EXPECT_DOUBLE_EQ(total, 1100.0);  // additive totals conserved

  // Missing parent mapping or degenerate weights error out.
  EXPECT_FALSE(
      SDisaggregateByProxy(obj, "state", "county",
                           {{Value("x"), Value("CA"), 1.0}})
          .ok());  // NV unmapped
  EXPECT_FALSE(SDisaggregateByProxy(obj, "state", "county",
                                    {{Value("x"), Value("CA"), 0.0},
                                     {Value("y"), Value("NV"), 1.0}})
                   .ok());
}

TEST(WeightedAvgTest, AvgMeasureUsesWeights) {
  // avg_income with a population weight: merging cells must form the
  // weighted mean, not the mean of means.
  StatisticalObject obj("income");
  ASSERT_TRUE(obj.AddDimension(Dimension("county")).ok());
  ASSERT_TRUE(obj.AddMeasure({"avg_income", "dollars",
                              MeasureType::kValuePerUnit, AggFn::kAvg, "pop"})
                  .ok());
  ASSERT_TRUE(
      obj.AddMeasure({"pop", "", MeasureType::kStock, AggFn::kSum, ""}).ok());
  // county A: 100 people at 10; county B: 300 people at 30.
  ASSERT_TRUE(obj.AddCell({Value("A")}, {Value(10.0), Value(100)}).ok());
  ASSERT_TRUE(obj.AddCell({Value("B")}, {Value(30.0), Value(300)}).ok());

  auto merged = SProject(obj, "county", {.enforce_summarizability = false});
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->data().num_rows(), 1u);
  size_t ai = *merged->data().schema().IndexOf("avg_income");
  size_t pi = *merged->data().schema().IndexOf("pop");
  // Weighted: (10*100 + 30*300) / 400 = 25, not (10+30)/2 = 20.
  EXPECT_DOUBLE_EQ(merged->data().at(0, ai).AsDouble(), 25.0);
  EXPECT_DOUBLE_EQ(merged->data().at(0, pi).AsDouble(), 400.0);
}

}  // namespace
}  // namespace statcube
