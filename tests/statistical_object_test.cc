// Tests for the StatisticalObject data type: construction, cells, structure
// description, FromTable.

#include "statcube/core/statistical_object.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

StatisticalObject MakeEmployment() {
  StatisticalObject obj("employment_in_california");
  EXPECT_TRUE(obj.AddDimension(Dimension("sex")).ok());
  Dimension year("year", DimensionKind::kTemporal);
  EXPECT_TRUE(obj.AddDimension(year).ok());
  Dimension prof("profession");
  ClassificationHierarchy h("by_class", {"profession", "professional_class"});
  EXPECT_TRUE(h.Link(0, Value("civil engineer"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("chemical engineer"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("junior secretary"), Value("secretary")).ok());
  prof.AddHierarchy(h);
  EXPECT_TRUE(obj.AddDimension(prof).ok());
  EXPECT_TRUE(obj.AddMeasure({"employment", "", MeasureType::kStock,
                              AggFn::kSum})
                  .ok());
  // Some cells.
  EXPECT_TRUE(obj.AddCell({Value("M"), Value(1991), Value("civil engineer")},
                          {Value(241100)})
                  .ok());
  EXPECT_TRUE(obj.AddCell({Value("M"), Value(1991), Value("chemical engineer")},
                          {Value(197700)})
                  .ok());
  EXPECT_TRUE(obj.AddCell({Value("F"), Value(1991), Value("junior secretary")},
                          {Value(667300)})
                  .ok());
  return obj;
}

TEST(StatisticalObjectTest, SchemaFollowsStructure) {
  StatisticalObject obj = MakeEmployment();
  EXPECT_EQ(obj.data().num_columns(), 4u);
  EXPECT_EQ(obj.data().schema().column(0).name, "sex");
  EXPECT_EQ(obj.data().schema().column(3).name, "employment");
  EXPECT_EQ(obj.data().num_rows(), 3u);
}

TEST(StatisticalObjectTest, DimensionValueRegistration) {
  StatisticalObject obj = MakeEmployment();
  auto sex = obj.DimensionNamed("sex");
  ASSERT_TRUE(sex.ok());
  EXPECT_EQ((*sex)->cardinality(), 2u);
  auto prof = obj.DimensionNamed("profession");
  ASSERT_TRUE(prof.ok());
  EXPECT_EQ((*prof)->cardinality(), 3u);
}

TEST(StatisticalObjectTest, DuplicateNamesRejected) {
  StatisticalObject obj = MakeEmployment();
  EXPECT_EQ(obj.AddDimension(Dimension("sex")).code(),
            StatusCode::kInvalidArgument);  // after cells
  StatisticalObject fresh("f");
  ASSERT_TRUE(fresh.AddDimension(Dimension("a")).ok());
  EXPECT_EQ(fresh.AddDimension(Dimension("a")).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(fresh.AddMeasure({"m", "", MeasureType::kFlow, AggFn::kSum}).ok());
  EXPECT_EQ(fresh.AddMeasure({"m", "", MeasureType::kFlow, AggFn::kSum}).code(),
            StatusCode::kAlreadyExists);
}

TEST(StatisticalObjectTest, CellArityChecked) {
  StatisticalObject obj = MakeEmployment();
  EXPECT_FALSE(obj.AddCell({Value("M")}, {Value(1)}).ok());
  EXPECT_FALSE(
      obj.AddCell({Value("M"), Value(1990), Value("x")}, {}).ok());
}

TEST(StatisticalObjectTest, LookupErrors) {
  StatisticalObject obj = MakeEmployment();
  EXPECT_FALSE(obj.DimensionNamed("ghost").ok());
  EXPECT_FALSE(obj.MeasureNamed("ghost").ok());
  EXPECT_FALSE(obj.DimensionIndex("ghost").ok());
  auto idx = obj.DimensionIndex("year");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
}

TEST(StatisticalObjectTest, DescribeStructureMatchesPaperStyle) {
  StatisticalObject obj = MakeEmployment();
  std::string desc = obj.DescribeStructure();
  EXPECT_NE(desc.find("Summary measure: employment"), std::string::npos);
  EXPECT_NE(desc.find("Dimensions: sex, year, profession"), std::string::npos);
  EXPECT_NE(desc.find("professional_class --> profession"), std::string::npos);
  EXPECT_NE(desc.find("stock"), std::string::npos);
}

TEST(StatisticalObjectTest, FromTable) {
  Schema s;
  s.AddColumn("product", ValueType::kString);
  s.AddColumn("day", ValueType::kString);
  s.AddColumn("qty", ValueType::kDouble);
  Table t("sales", s);
  ASSERT_TRUE(t.AppendRow({Value("banana"), Value("d1"), Value(3.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value("apple"), Value("d1"), Value(5.0)}).ok());

  auto obj = StatisticalObject::FromTable(
      t, {"product", "day"}, {{"qty", "dollars", MeasureType::kFlow, AggFn::kSum}},
      {"day"});
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->dimensions().size(), 2u);
  EXPECT_TRUE(obj->dimensions()[1].is_temporal());
  EXPECT_FALSE(obj->dimensions()[0].is_temporal());
  EXPECT_EQ(obj->data().num_rows(), 2u);

  // Missing columns error.
  EXPECT_FALSE(StatisticalObject::FromTable(
                   t, {"ghost"}, {{"qty", "", MeasureType::kFlow, AggFn::kSum}})
                   .ok());
  EXPECT_FALSE(StatisticalObject::FromTable(
                   t, {"product"},
                   {{"ghost", "", MeasureType::kFlow, AggFn::kSum}})
                   .ok());
}

}  // namespace
}  // namespace statcube
