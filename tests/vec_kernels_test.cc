// Unit tests for the block-at-a-time kernels (common/vec_block.h) and the
// radix-partitioned group-by (exec/vec_kernels.h): block primitive
// semantics, the exactness gate that licenses reassociation, the packed-key
// overflow fallback, and the null/non-numeric/NaN edges of the flag-encoded
// measure slabs.

#include "statcube/exec/vec_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "statcube/common/vec_block.h"
#include "statcube/relational/aggregate.h"

namespace statcube {
namespace {

uint64_t Bits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

// ---------------------------------------------------------------------------
// Block primitives.

TEST(VecBlock, OrderedSumMatchesNaiveLoop) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(0.1 * double(i) + 0.003);
  double naive = 0.0;
  for (double d : v) naive += d;
  EXPECT_EQ(Bits(naive), Bits(vec::SumBlockOrdered(v.data(), v.size())));
  double naive_sq = 0.0;
  for (double d : v) naive_sq += d * d;
  EXPECT_EQ(Bits(naive_sq),
            Bits(vec::SumSqBlockOrdered(v.data(), v.size())));
}

TEST(VecBlock, FastSumIsExactOnIntegers) {
  // Integer-valued doubles below 2^53/n: every partial sum is exactly
  // representable, so the 4-lane reassociation must equal the ordered sum
  // bit-for-bit at every length (tails included).
  std::vector<double> v;
  for (int i = 0; i < 403; ++i) v.push_back(double((i * 7919) % 10007));
  for (size_t n : {size_t(0), size_t(1), size_t(3), size_t(4), size_t(7),
                   size_t(64), size_t(403)}) {
    EXPECT_EQ(Bits(vec::SumBlockOrdered(v.data(), n)),
              Bits(vec::SumBlockFast(v.data(), n)))
        << "n=" << n;
    EXPECT_EQ(Bits(vec::SumSqBlockOrdered(v.data(), n)),
              Bits(vec::SumSqBlockFast(v.data(), n)))
        << "n=" << n;
  }
}

TEST(VecBlock, MinMaxBlock) {
  std::vector<double> v = {3.5, -2.0, 9.25, 9.25, -2.0, 0.0};
  EXPECT_EQ(-2.0, vec::MinBlock(v.data(), v.size()));
  EXPECT_EQ(9.25, vec::MaxBlock(v.data(), v.size()));
  EXPECT_EQ(3.5, vec::MinBlock(v.data(), 1));
  EXPECT_EQ(3.5, vec::MaxBlock(v.data(), 1));
}

TEST(VecBlock, CountFlagBits) {
  std::vector<uint8_t> flags = {3, 1, 0, 3, 2, 1, 3};
  EXPECT_EQ(5u, vec::CountFlagBits(flags.data(), flags.size(), 1));
  EXPECT_EQ(4u, vec::CountFlagBits(flags.data(), flags.size(), 2));
  EXPECT_EQ(0u, vec::CountFlagBits(flags.data(), 0, 1));
}

TEST(VecBlock, ReorderIsExactGate) {
  const double kMax = vec::kMaxExactDouble;  // 2^53
  // Non-integral values never qualify, no matter how small.
  EXPECT_FALSE(vec::ReorderIsExact(false, 1.0, 10));
  // Integral and comfortably small: exact.
  EXPECT_TRUE(vec::ReorderIsExact(true, 1000.0, 1000));
  // n * max_abs crossing 2^53 disqualifies: a partial sum could round.
  EXPECT_TRUE(vec::ReorderIsExact(true, kMax / 4.0, 4));
  EXPECT_FALSE(vec::ReorderIsExact(true, kMax / 4.0, 5));
  // Empty blocks are trivially exact.
  EXPECT_TRUE(vec::ReorderIsExact(true, 0.0, 0));
}

TEST(VecBlock, SumBlockAutoRoutesByExactness) {
  // Inexact inputs must take the ordered path: sum in an order the fast
  // kernel would not use and check SumBlockAuto reproduces the ordered bits.
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(0.1 * double(i));
  EXPECT_EQ(Bits(vec::SumBlockOrdered(v.data(), v.size())),
            Bits(exec::SumBlockAuto(v.data(), v.size(), false, 10.0)));
  // Exact inputs may reassociate — and the result is still the ordered sum
  // (the whole point of the gate).
  std::vector<double> w;
  for (int i = 0; i < 100; ++i) w.push_back(double(i * 13));
  EXPECT_EQ(Bits(vec::SumBlockOrdered(w.data(), w.size())),
            Bits(exec::SumBlockAuto(w.data(), w.size(), true, 99. * 13)));
}

TEST(VecBlock, SimdLevelNameIsKnown) {
  std::string level = vec::SimdLevelName();
  EXPECT_TRUE(level == "avx2" || level == "generic") << level;
}

// ---------------------------------------------------------------------------
// Radix group-by vs the serial reference, on hand-built edge tables.

// Bit-exact comparison of two GroupedStates maps (same groups, same
// accumulator bits in every field).
void ExpectStatesIdentical(const GroupedStates& a, const GroupedStates& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, sa] : a) {
    auto it = b.find(key);
    ASSERT_TRUE(it != b.end());
    const auto& sb = it->second;
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].rows, sb[i].rows) << i;
      EXPECT_EQ(sa[i].count, sb[i].count) << i;
      EXPECT_EQ(Bits(sa[i].sum), Bits(sb[i].sum)) << i;
      EXPECT_EQ(Bits(sa[i].sum_sq), Bits(sb[i].sum_sq)) << i;
      EXPECT_EQ(Bits(sa[i].min), Bits(sb[i].min)) << i;
      EXPECT_EQ(Bits(sa[i].max), Bits(sb[i].max)) << i;
    }
  }
}

exec::ExecOptions Vec(int threads, size_t morsel_rows = 128) {
  exec::ExecOptions o;
  o.threads = threads;
  o.morsel_rows = morsel_rows;
  o.vectorized = true;
  o.vec_fanout_rows = 0;  // force the parallel phases even at test sizes
  return o;
}

Schema KvSchema() {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  s.AddColumn("v", ValueType::kDouble);
  return s;
}

TEST(VecGroupBy, NullsNonNumericsAndNaNs) {
  // The flag-encoded slabs must reproduce AggState::Add exactly: NULL rows
  // count toward `rows` only, a non-numeric cell toward `count` too, and a
  // NaN poisons sum/min/max exactly as the serial `<` comparisons do.
  Table t("edges", KvSchema());
  for (int i = 0; i < 600; ++i) {
    std::string key = std::string("g").append(std::to_string(i % 5));
    if (i % 11 == 0) {
      t.AppendRowUnchecked({Value(key), Value::Null()});
    } else if (i % 13 == 0) {
      t.AppendRowUnchecked({Value(key), Value("not-a-number")});
    } else if (i % 97 == 0) {
      t.AppendRowUnchecked(
          {Value(key), Value(std::numeric_limits<double>::quiet_NaN())});
    } else {
      t.AppendRowUnchecked({Value(key), Value(0.25 * double(i) - 40.0)});
    }
  }
  std::vector<AggSpec> aggs = {{AggFn::kSum, "v", ""},
                               {AggFn::kCount, "v", ""},
                               {AggFn::kMin, "v", ""},
                               {AggFn::kMax, "v", ""},
                               {AggFn::kVariance, "v", ""}};
  auto serial = GroupByStates(t, {"k"}, aggs);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {1, 2, 4}) {
    auto vec = exec::VectorizedGroupByStates(t, {"k"}, aggs, Vec(threads));
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    ExpectStatesIdentical(*serial, *vec);
  }
}

TEST(VecGroupBy, MixedIntAndDoubleKeysPickSerialRepresentative) {
  // int64 2 and double 2.0 compare equal and hash together, so they land in
  // the same group; the emitted key must be the value from the group's
  // FIRST row — exactly the representative the serial map keeps.
  Schema s;
  s.AddColumn("k", ValueType::kInt64);
  s.AddColumn("v", ValueType::kDouble);
  Table t("mixed", s);
  t.AppendRowUnchecked({Value(2.0), Value(1.0)});      // double first
  t.AppendRowUnchecked({Value(int64_t(2)), Value(2.0)});
  t.AppendRowUnchecked({Value(int64_t(3)), Value(3.0)});
  t.AppendRowUnchecked({Value(3.0), Value(4.0)});      // int64 first
  std::vector<AggSpec> aggs = {{AggFn::kSum, "v", ""}};
  auto serial = GroupByStates(t, {"k"}, aggs);
  ASSERT_TRUE(serial.ok());
  auto vec = exec::VectorizedGroupByStates(t, {"k"}, aggs, Vec(2, 1));
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  ASSERT_EQ(serial->size(), vec->size());
  // Same representative TYPE, not just equal value.
  for (const auto& [key, st] : *serial) {
    bool found = false;
    for (const auto& [vkey, vst] : *vec) {
      if (vkey[0].type() == key[0].type() && vkey[0] == key[0]) found = true;
    }
    EXPECT_TRUE(found) << key[0].ToString();
  }
  ExpectStatesIdentical(*serial, *vec);
}

TEST(VecGroupBy, WideHighCardinalityKeys) {
  // Nine group columns with up-to-256 distinct values each: the tuple
  // dictionary never packs per-column codes, so wide keys need no fallback
  // — the kernel answers directly, bit-identical to serial, through both
  // the direct entry point and the ParallelGroupByStates router.
  Schema s;
  for (int c = 0; c < 9; ++c)
    s.AddColumn(std::string("c").append(std::to_string(c)),
                ValueType::kInt64);
  s.AddColumn("v", ValueType::kDouble);
  Table t("wide", s);
  const int64_t mult[9] = {3, 5, 7, 9, 11, 13, 15, 17, 19};  // odd: full cycle
  for (int64_t i = 0; i < 512; ++i) {
    Row row;
    for (int c = 0; c < 9; ++c) row.push_back(Value((i * mult[c]) % 256));
    row.push_back(Value(double(i)));
    t.AppendRowUnchecked(std::move(row));
  }
  std::vector<std::string> by;
  for (int c = 0; c < 9; ++c)
    by.push_back(std::string("c").append(std::to_string(c)));
  std::vector<AggSpec> aggs = {{AggFn::kSum, "v", ""}};

  auto serial = GroupByStates(t, by, aggs);
  ASSERT_TRUE(serial.ok());
  auto direct = exec::VectorizedGroupByStates(t, by, aggs, Vec(2));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ExpectStatesIdentical(*serial, *direct);
  auto routed = exec::ParallelGroupByStates(t, by, aggs, Vec(2));
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ExpectStatesIdentical(*serial, *routed);
}

TEST(VecGroupBy, BadColumnErrorsMatchScalarPath) {
  Table t("kv", KvSchema());
  t.AppendRowUnchecked({Value("a"), Value(1.0)});
  std::vector<AggSpec> aggs = {{AggFn::kSum, "v", ""}};
  EXPECT_FALSE(
      exec::VectorizedGroupByStates(t, {"missing"}, aggs, Vec(2)).ok());
  EXPECT_FALSE(exec::VectorizedGroupByStates(
                   t, {"k"}, {{AggFn::kSum, "missing", ""}}, Vec(2))
                   .ok());
}

TEST(VecGroupBy, ManyGroupsAcrossPartitions) {
  // Enough distinct keys that every radix partition is populated; group
  // count and per-group bits must match serial exactly.
  Table t("many", KvSchema());
  for (int i = 0; i < 4096; ++i)
    t.AppendRowUnchecked({Value("key" + std::to_string(i % 701)),
                          Value(0.5 * double(i % 89))});
  std::vector<AggSpec> aggs = {{AggFn::kSum, "v", ""},
                               {AggFn::kCountAll, "", ""}};
  auto serial = GroupByStates(t, {"k"}, aggs);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(701u, serial->size());
  for (int threads : {1, 2, 4, 8}) {
    auto vec = exec::VectorizedGroupByStates(t, {"k"}, aggs, Vec(threads));
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    ExpectStatesIdentical(*serial, *vec);
  }
}

}  // namespace
}  // namespace statcube
