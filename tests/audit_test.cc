// Tests for query auditing (§7): the log records every decision, and
// heavily-touched rows are identifiable.

#include "statcube/privacy/audit.h"

#include <gtest/gtest.h>

#include "statcube/common/rng.h"

namespace statcube {
namespace {

Table MakePeople(int n) {
  Schema s;
  s.AddColumn("sex", ValueType::kString);
  s.AddColumn("dept", ValueType::kString);
  s.AddColumn("salary", ValueType::kInt64);
  Table t("people", s);
  Rng rng(6);
  for (int i = 0; i < n; ++i) {
    t.AppendRowUnchecked({Value(rng.Bernoulli(0.5) ? "M" : "F"),
                          Value(i % 7 == 0 ? "exec" : "staff"),
                          Value(int64_t(40000 + rng.Uniform(60000)))});
  }
  return t;
}

TEST(AuditTest, LogsAnswersAndRefusals) {
  Table micro = MakePeople(100);
  AuditedDatabase db(micro, {.min_query_set_size = 5});
  auto male = expr::ColumnEq(micro.schema(), "sex", Value("M"));
  ASSERT_TRUE(male.ok());
  auto exec_f = expr::And(
      {*expr::ColumnEq(micro.schema(), "dept", Value("exec")),
       *expr::ColumnEq(micro.schema(), "sex", Value("F"))});

  ASSERT_TRUE(db.Query("avg salary of men", AggFn::kAvg, "salary", *male).ok());
  auto refused = db.Query("avg salary of female execs", AggFn::kAvg, "salary",
                          exec_f);
  // Small group: likely refused (15 execs, ~half female — may pass 5).
  ASSERT_EQ(db.log().size(), 2u);
  const AuditRecord& first = db.log()[0];
  EXPECT_EQ(first.description, "avg salary of men");
  EXPECT_TRUE(first.answered);
  EXPECT_GT(first.query_set_size, 0u);
  EXPECT_TRUE(first.refusal_reason.empty());
  const AuditRecord& second = db.log()[1];
  EXPECT_EQ(second.answered, refused.ok());
  if (!refused.ok()) EXPECT_FALSE(second.refusal_reason.empty());
}

TEST(AuditTest, TouchCountsOnlyAnsweredQueries) {
  Table micro = MakePeople(60);
  AuditedDatabase db(micro, {.min_query_set_size = 5});
  auto male = expr::ColumnEq(micro.schema(), "sex", Value("M"));
  ASSERT_TRUE(male.ok());
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(db.Query("men", AggFn::kCountAll, "", *male).ok());
  // A refused query must not bump counts.
  auto nobody = expr::ColumnEq(micro.schema(), "dept", Value("ghost_dept"));
  ASSERT_TRUE(nobody.ok());
  EXPECT_FALSE(db.Query("nobody", AggFn::kCountAll, "", *nobody).ok());

  for (size_t i = 0; i < micro.num_rows(); ++i) {
    bool is_male = micro.at(i, 0) == Value("M");
    EXPECT_EQ(db.TouchCount(i), is_male ? 3u : 0u) << i;
  }
  auto hot = db.HeavilyQueriedRows(2);
  size_t males = 0;
  for (size_t i = 0; i < micro.num_rows(); ++i)
    if (micro.at(i, 0) == Value("M")) ++males;
  EXPECT_EQ(hot.size(), males);
  EXPECT_TRUE(db.HeavilyQueriedRows(3).empty());
}

}  // namespace
}  // namespace statcube
