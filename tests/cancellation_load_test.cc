// Mid-flight cancellation under load, at 1/2/4 worker threads: a separate
// thread cancels the query's token while the morsel loops are running, and
// the test asserts the cooperative-stop contract end to end — the query
// returns kCancelled (a clean Status, not a crash or a torn table), no
// partial result is admitted to the result cache, the flight recorder
// retains the profile with outcome "cancelled", and the registry is empty
// again afterwards. Run under TSan by the sanitizer CI matrix; the
// registry-snapshot polling below is the race detector's food.
//
// Timing note: cancellation is cooperative, so a cancel can lose the race
// with a fast query. Each thread count therefore retries until one attempt
// is observed mid-flight (bounded by kMaxAttempts); with the workload sized
// here a first-attempt hit is the norm.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "statcube/cache/result_cache.h"
#include "statcube/common/cancellation.h"
#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/query_registry.h"
#include "statcube/query/cache_key.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

// Big enough that a CUBE over three dimensions runs for many morsels
// (hundreds at kDefaultMorselRows = 2048) on any build type.
const StatisticalObject& Retail() {
  static StatisticalObject* obj = [] {
    RetailOptions opt;
    opt.num_products = 24;
    opt.num_stores = 8;
    opt.num_cities = 4;
    opt.num_days = 30;
    opt.num_rows = 400000;
    return new StatisticalObject(
        MakeRetailWorkload(opt).ValueOrDie().object);
  }();
  return *obj;
}

constexpr char kQuery[] = "SELECT sum(amount) BY CUBE(city, month, store)";
constexpr int kMaxAttempts = 20;

// One attempt: start the query on a worker thread with an external token and
// the cache in admit-everything mode, cancel as soon as the registry shows
// execution progress, and report whether the cancel won the race. When it
// did, every post-condition is asserted here.
bool AttemptCancel(int threads) {
  cache::ResultCache& rc = cache::ResultCache::Global();
  rc.Clear();

  CancellationToken token;
  std::atomic<bool> done{false};
  Status status = Status::OK();

  std::thread worker([&] {
    QueryOptions opt;
    opt.engine = QueryEngine::kRelational;
    opt.threads = threads;
    opt.cache = cache::Mode::kOn;
    opt.record = true;
    opt.cancel = &token;
    auto r = QueryProfiled(Retail(), kQuery, opt);
    status = r.ok() ? Status::OK() : r.status();
    done.store(true, std::memory_order_release);
  });

  // Wait until the query is visibly executing — morsels for the parallel
  // paths, any charge or a couple of ms in flight for the serial path —
  // then cancel. If the query finishes first, this attempt is a miss.
  while (!done.load(std::memory_order_acquire)) {
    bool progressed = false;
    for (const obs::ActiveQuerySnapshot& q :
         obs::QueryRegistry::Global().Snapshot()) {
      if (q.query != kQuery) continue;
      progressed = q.resources.morsels >= 1 ||
                   q.resources.bytes_touched > 0 ||
                   q.resources.cpu_us > 0 || q.elapsed_us > 2000;
    }
    if (progressed) {
      token.Cancel();
      break;
    }
    std::this_thread::yield();
  }
  worker.join();

  if (status.ok()) return false;  // the query outran the cancel: retry

  // A cancelled query must fail with exactly kCancelled...
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  // ...leave nothing behind in the result cache (admission was wide open,
  // so a leaked partial table would have been admitted)...
  EXPECT_EQ(rc.entries(), 0u) << "partial result cached at threads="
                              << threads;
  EXPECT_FALSE(rc.Lookup(*query::BuildQueryKey(
                   Retail(), *ParseQuery(kQuery),
                   QueryEngine::kRelational))
                   .has_value());
  // ...and still be accounted for: profile retained, outcome "cancelled".
  std::vector<obs::RecordedProfile> recent =
      obs::FlightRecorder::Global().Snapshot(1);
  EXPECT_EQ(recent.size(), 1u);
  if (!recent.empty()) {
    EXPECT_EQ(recent[0].query, kQuery);
    EXPECT_EQ(recent[0].profile.outcome, "cancelled");
  }
  EXPECT_EQ(obs::QueryRegistry::Global().ActiveCount(), 0u);
  return true;
}

class CancellationLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Admit everything so a leaked partial insert cannot hide behind the
    // cost-aware admission floor; restored in TearDown.
    cache::ResultCache& rc = cache::ResultCache::Global();
    saved_admit_min_us_ = rc.admit_min_us();
    rc.set_admit_min_us(0);
  }
  void TearDown() override {
    cache::ResultCache& rc = cache::ResultCache::Global();
    rc.set_admit_min_us(saved_admit_min_us_);
    rc.Clear();
  }
  uint64_t saved_admit_min_us_ = 0;
};

void RunAtThreads(int threads) {
  // Teeth check: the same query, uncancelled, IS admitted to the cache —
  // so the "no partial insert" assertions above cannot pass vacuously.
  {
    cache::ResultCache& rc = cache::ResultCache::Global();
    rc.Clear();
    QueryOptions opt;
    opt.threads = threads;
    opt.cache = cache::Mode::kOn;
    opt.record = false;
    auto r = QueryProfiled(Retail(), kQuery, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_GE(rc.entries(), 1u) << "uncancelled run was not cached; the "
                                   "no-partial-insert check would be vacuous";
  }

  for (int attempt = 1; attempt <= kMaxAttempts; ++attempt) {
    if (AttemptCancel(threads)) return;
  }
  FAIL() << "no attempt out of " << kMaxAttempts
         << " was cancelled mid-flight at threads=" << threads;
}

TEST_F(CancellationLoadTest, SerialQueryStopsCleanly) { RunAtThreads(1); }

TEST_F(CancellationLoadTest, TwoThreadQueryStopsCleanly) { RunAtThreads(2); }

TEST_F(CancellationLoadTest, FourThreadQueryStopsCleanly) { RunAtThreads(4); }

}  // namespace
}  // namespace statcube
