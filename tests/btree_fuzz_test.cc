// Randomized differential tests: the B+-tree against std::map across many
// seeds and fanouts (the index underpins header compression and sampling,
// so it gets the heaviest fuzzing).

#include <gtest/gtest.h>

#include <map>

#include "statcube/common/rng.h"
#include "statcube/storage/btree.h"

namespace statcube {
namespace {

template <int kFanout>
void FuzzAgainstStdMap(uint64_t seed, int ops) {
  Rng rng(seed);
  BPlusTree<uint64_t, uint64_t, kFanout> tree;
  std::map<uint64_t, uint64_t> ref;

  for (int i = 0; i < ops; ++i) {
    uint64_t k = rng.Uniform(10000);
    switch (rng.Uniform(3)) {
      case 0: {  // insert
        uint64_t v = rng.Next();
        bool inserted = tree.Insert(k, v);
        bool ref_inserted = ref.emplace(k, v).second;
        ASSERT_EQ(inserted, ref_inserted) << "op " << i;
        break;
      }
      case 1: {  // find
        const uint64_t* v = tree.Find(k);
        auto it = ref.find(k);
        if (it == ref.end()) {
          ASSERT_EQ(v, nullptr) << "op " << i;
        } else {
          ASSERT_NE(v, nullptr) << "op " << i;
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
      case 2: {  // floor + lower_bound
        auto fe = tree.FloorEntry(k);
        auto it = ref.upper_bound(k);
        if (it == ref.begin()) {
          ASSERT_FALSE(fe.valid()) << "op " << i;
        } else {
          --it;
          ASSERT_TRUE(fe.valid()) << "op " << i;
          ASSERT_EQ(*fe.key, it->first);
        }
        auto lb = tree.LowerBound(k);
        auto it2 = ref.lower_bound(k);
        if (it2 == ref.end()) {
          ASSERT_FALSE(lb.valid());
        } else {
          ASSERT_TRUE(lb.valid());
          ASSERT_EQ(*lb.key, it2->first);
        }
        break;
      }
    }
  }
  // Final full sweeps.
  ASSERT_EQ(tree.size(), ref.size());
  auto it = ref.begin();
  tree.ForEach([&](uint64_t k, uint64_t v) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, ref.end());
  // Rank selection agrees with ordered iteration.
  size_t r = 0;
  for (auto& [k, v] : ref) {
    if (r % 37 == 0) {
      auto e = tree.SelectByRank(r);
      ASSERT_TRUE(e.valid());
      EXPECT_EQ(*e.key, k);
    }
    ++r;
  }
}

class BTreeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzz, WideFanout) { FuzzAgainstStdMap<64>(GetParam(), 6000); }
TEST_P(BTreeFuzz, NarrowFanout) { FuzzAgainstStdMap<4>(GetParam(), 3000); }
TEST_P(BTreeFuzz, MediumFanout) { FuzzAgainstStdMap<9>(GetParam(), 4000); }

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

TEST(BTreeFuzzSequential, AscendingAndDescending) {
  BPlusTree<int, int, 6> asc;
  for (int i = 0; i < 20000; ++i) ASSERT_TRUE(asc.Insert(i, i));
  EXPECT_EQ(asc.size(), 20000u);
  for (int i = 0; i < 20000; i += 777) EXPECT_NE(asc.Find(i), nullptr);

  BPlusTree<int, int, 6> desc;
  for (int i = 20000; i-- > 0;) ASSERT_TRUE(desc.Insert(i, i));
  EXPECT_EQ(desc.size(), 20000u);
  int expect = 0;
  desc.ForEach([&](int k, int) { EXPECT_EQ(k, expect++); });
}

}  // namespace
}  // namespace statcube
