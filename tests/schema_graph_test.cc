// Tests for the S/X/C schema graph (Figures 3–7), including the Figure 6
// equivalence of nested and flat dimension groups.

#include "statcube/core/schema_graph.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

StatisticalObject MakeIncome() {
  StatisticalObject obj("avg_income_california");
  EXPECT_TRUE(obj.AddDimension(Dimension("sex")).ok());
  EXPECT_TRUE(obj.AddDimension(Dimension("race")).ok());
  EXPECT_TRUE(obj.AddDimension(Dimension("age")).ok());
  EXPECT_TRUE(
      obj.AddDimension(Dimension("year", DimensionKind::kTemporal)).ok());
  Dimension prof("profession");
  ClassificationHierarchy h("by_class", {"profession", "professional_class"});
  EXPECT_TRUE(h.Link(0, Value("civil engineer"), Value("engineer")).ok());
  prof.AddHierarchy(h);
  EXPECT_TRUE(obj.AddDimension(prof).ok());
  EXPECT_TRUE(obj.AddMeasure({"avg_income", "dollars",
                              MeasureType::kValuePerUnit, AggFn::kAvg}).ok());
  return obj;
}

TEST(SchemaGraphTest, Figure4Structure) {
  SchemaGraph g = SchemaGraph::FromObject(MakeIncome());
  // Root is the S node labeled with the measure.
  const auto& root = g.nodes()[size_t(g.root())];
  EXPECT_EQ(root.kind, GraphNodeKind::kSummary);
  EXPECT_EQ(root.label, "avg_income");
  ASSERT_EQ(root.children.size(), 1u);
  const auto& x = g.nodes()[size_t(root.children[0])];
  EXPECT_EQ(x.kind, GraphNodeKind::kCross);
  EXPECT_EQ(x.children.size(), 5u);  // 5 dimensions
  EXPECT_EQ(g.CrossNodeCount(), 1u);
}

TEST(SchemaGraphTest, HierarchyChainCoarsestFirst) {
  SchemaGraph g = SchemaGraph::FromObject(MakeIncome());
  // Find the professional_class C node: it must have a profession child.
  bool found = false;
  for (const auto& n : g.nodes()) {
    if (n.kind == GraphNodeKind::kCategory && n.label == "professional_class") {
      ASSERT_EQ(n.children.size(), 1u);
      EXPECT_EQ(g.nodes()[size_t(n.children[0])].label, "profession");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SchemaGraphTest, DimensionLabelsUseFinestLevel) {
  SchemaGraph g = SchemaGraph::FromObject(MakeIncome());
  auto labels = g.DimensionLabels();
  EXPECT_EQ(labels, (std::vector<std::string>{"age", "profession", "race",
                                              "sex", "year"}));
}

TEST(SchemaGraphTest, Figure5GroupingAndFigure6Equivalence) {
  SchemaGraph g = SchemaGraph::FromObject(MakeIncome());
  auto before = g.DimensionLabels();
  ASSERT_TRUE(
      g.GroupDimensions("socio_economic", {"sex", "race", "age"}).ok());
  EXPECT_EQ(g.CrossNodeCount(), 2u);
  // The Figure 6 property: grouping does not change the cross product.
  EXPECT_EQ(g.DimensionLabels(), before);
  // Flatten restores a single X-node, same dimensions.
  g.Flatten();
  EXPECT_EQ(g.CrossNodeCount(), 1u);
  EXPECT_EQ(g.DimensionLabels(), before);
}

TEST(SchemaGraphTest, IteratedGrouping) {
  SchemaGraph g = SchemaGraph::FromObject(MakeIncome());
  auto before = g.DimensionLabels();
  ASSERT_TRUE(g.GroupDimensions("demo", {"sex", "race"}).ok());
  ASSERT_TRUE(g.GroupDimensions("work", {"profession"}).ok());
  EXPECT_EQ(g.CrossNodeCount(), 3u);
  EXPECT_EQ(g.DimensionLabels(), before);
  g.Flatten();
  EXPECT_EQ(g.CrossNodeCount(), 1u);
  EXPECT_EQ(g.DimensionLabels(), before);
}

TEST(SchemaGraphTest, GroupUnknownDimensionFails) {
  SchemaGraph g = SchemaGraph::FromObject(MakeIncome());
  EXPECT_FALSE(g.GroupDimensions("g", {"ghost"}).ok());
}

TEST(SchemaGraphTest, Figure7TwoDimensionalLayout) {
  auto g = SchemaGraph::With2DLayout(MakeIncome(), {"sex", "year"},
                                     {"profession", "race", "age"});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->CrossNodeCount(), 3u);  // X, rows, columns
  auto labels = g->DimensionLabels();
  EXPECT_EQ(labels, (std::vector<std::string>{"age", "profession", "race",
                                              "sex", "year"}));
  EXPECT_FALSE(
      SchemaGraph::With2DLayout(MakeIncome(), {"ghost"}, {"race"}).ok());
}

TEST(SchemaGraphTest, Figure3InstanceGraph) {
  StatisticalObject obj("inc");
  ASSERT_TRUE(obj.AddDimension(Dimension("sex")).ok());
  Dimension prof("profession");
  ClassificationHierarchy h("by_class", {"profession", "professional_class"});
  ASSERT_TRUE(h.Link(0, Value("civil eng"), Value("engineer")).ok());
  ASSERT_TRUE(h.Link(0, Value("chemical eng"), Value("engineer")).ok());
  ASSERT_TRUE(h.Link(0, Value("junior sec"), Value("secretary")).ok());
  prof.AddHierarchy(h);
  ASSERT_TRUE(obj.AddDimension(prof).ok());
  ASSERT_TRUE(obj.AddMeasure(
                   {"avg_income", "", MeasureType::kValuePerUnit, AggFn::kAvg,
                    ""})
                  .ok());
  ASSERT_TRUE(obj.AddCell({Value("M"), Value("civil eng")}, {Value(1.0)}).ok());
  ASSERT_TRUE(obj.AddCell({Value("F"), Value("junior sec")}, {Value(2.0)}).ok());

  auto g = SchemaGraph::FromObjectWithValues(obj);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // The dual-role node: "engineer" is a value node that carries the
  // profession values beneath it.
  bool engineer_has_children = false;
  for (const auto& n : g->nodes()) {
    if (n.label == "engineer") {
      EXPECT_EQ(n.children.size(), 2u);
      engineer_has_children = true;
    }
  }
  EXPECT_TRUE(engineer_has_children);
  // Value nodes appear in the DOT export.
  std::string dot = g->ToDot();
  EXPECT_NE(dot.find("civil eng"), std::string::npos);
  EXPECT_NE(dot.find("M"), std::string::npos);
}

TEST(SchemaGraphTest, InstanceGraphRefusesLargeValueSets) {
  // The paper's complaint: "in case the number of categories ... was large
  // (e.g. 50 states), it was not possible to represent that on screens".
  StatisticalObject obj("big");
  Dimension state("state");
  ASSERT_TRUE(obj.AddDimension(state).ok());
  ASSERT_TRUE(obj.AddMeasure(
                   {"pop", "", MeasureType::kStock, AggFn::kSum, ""})
                  .ok());
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(
        obj.AddCell({Value("state" + std::to_string(i))}, {Value(1)}).ok());
  auto g = SchemaGraph::FromObjectWithValues(obj, 16);
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  // The schema-level graph (Figure 4) handles it fine.
  SchemaGraph ok = SchemaGraph::FromObject(obj);
  EXPECT_EQ(ok.CrossNodeCount(), 1u);
}

TEST(SchemaGraphTest, DotExport) {
  SchemaGraph g = SchemaGraph::FromObject(MakeIncome());
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // S node
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);  // X node
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);  // C nodes
  EXPECT_NE(dot.find("profession"), std::string::npos);
}

}  // namespace
}  // namespace statcube
