// Tests for the MOLAP cube facade and the array-based simultaneous cube
// build: both must agree exactly with relational recomputation.

#include "statcube/olap/molap_cube.h"

#include <gtest/gtest.h>

#include "statcube/common/rng.h"
#include "statcube/olap/cube_build.h"
#include "statcube/relational/cube_operator.h"

namespace statcube {
namespace {

StatisticalObject MakeSales(int n, uint64_t seed) {
  StatisticalObject obj("sales");
  EXPECT_TRUE(obj.AddDimension(Dimension("product")).ok());
  EXPECT_TRUE(obj.AddDimension(Dimension("store")).ok());
  EXPECT_TRUE(
      obj.AddDimension(Dimension("day", DimensionKind::kTemporal)).ok());
  EXPECT_TRUE(
      obj.AddMeasure({"qty", "dollars", MeasureType::kFlow, AggFn::kSum, ""})
          .ok());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(obj.AddCell({Value("p" + std::to_string(rng.Uniform(6))),
                             Value("s" + std::to_string(rng.Uniform(4))),
                             Value("d" + std::to_string(rng.Uniform(5)))},
                            {Value(double(1 + rng.Uniform(100)))})
                    .ok());
  }
  return obj;
}

double ReferenceSum(const StatisticalObject& obj,
                    const std::vector<EqFilter>& filters) {
  double sum = 0;
  for (const Row& r : obj.data().rows()) {
    bool match = true;
    for (const auto& f : filters) {
      size_t idx = *obj.data().schema().IndexOf(f.column);
      if (r[idx] != f.value) {
        match = false;
        break;
      }
    }
    if (match) sum += r[3].AsDouble();
  }
  return sum;
}

TEST(MolapCubeTest, BuildsFullCrossProduct) {
  auto obj = MakeSales(400, 1);
  auto cube = MolapCube::Build(obj, "qty");
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->num_dims(), 3u);
  EXPECT_EQ(cube->array().num_cells(), 6u * 4 * 5);
  EXPECT_GT(cube->density(), 0.5);  // 400 draws over 120 cells
}

TEST(MolapCubeTest, SumWhereMatchesReference) {
  auto obj = MakeSales(500, 2);
  auto cube = MolapCube::Build(obj, "qty");
  ASSERT_TRUE(cube.ok());
  std::vector<std::vector<EqFilter>> cases = {
      {},
      {{"product", Value("p1")}},
      {{"store", Value("s2")}, {"day", Value("d3")}},
      {{"product", Value("p0")}, {"store", Value("s0")}, {"day", Value("d0")}},
      {{"product", Value("p_missing")}},
  };
  for (const auto& filters : cases) {
    auto s = cube->SumWhere(filters);
    ASSERT_TRUE(s.ok());
    EXPECT_DOUBLE_EQ(*s, ReferenceSum(obj, filters));
  }
  EXPECT_FALSE(cube->SumWhere({{"ghost", Value(1)}}).ok());
}

TEST(MolapCubeTest, SumDiceMatchesReference) {
  auto obj = MakeSales(500, 3);
  auto cube = MolapCube::Build(obj, "qty");
  ASSERT_TRUE(cube.ok());
  auto s = cube->SumDice({{"product", {Value("p1"), Value("p3")}},
                          {"day", {Value("d0"), Value("d4")}}});
  ASSERT_TRUE(s.ok());
  double ref = 0;
  for (const Row& r : obj.data().rows()) {
    bool pm = r[0] == Value("p1") || r[0] == Value("p3");
    bool dm = r[2] == Value("d0") || r[2] == Value("d4");
    if (pm && dm) ref += r[3].AsDouble();
  }
  EXPECT_DOUBLE_EQ(*s, ref);
  // Empty selection sums to zero.
  s = cube->SumDice({{"product", {Value("nope")}}});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 0.0);
}

TEST(MolapCubeTest, GetCellAndDuplicateAccumulation) {
  StatisticalObject obj("t");
  ASSERT_TRUE(obj.AddDimension(Dimension("a")).ok());
  ASSERT_TRUE(
      obj.AddMeasure({"m", "", MeasureType::kFlow, AggFn::kSum, ""}).ok());
  ASSERT_TRUE(obj.AddCell({Value("x")}, {Value(5.0)}).ok());
  ASSERT_TRUE(obj.AddCell({Value("x")}, {Value(7.0)}).ok());  // duplicate
  auto cube = MolapCube::Build(obj, "m");
  ASSERT_TRUE(cube.ok());
  auto v = cube->GetCell({Value("x")});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 12.0);
  v = cube->GetCell({Value("unknown")});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 0.0);
}

TEST(ArrayCubeTest, CollapseDimSumsCorrectly) {
  DenseArray a({2, 3});
  int v = 0;
  for (size_t i = 0; i < 2; ++i)
    for (size_t j = 0; j < 3; ++j) ASSERT_TRUE(a.Set({i, j}, ++v).ok());
  DenseArray rows = CollapseDim(a, 1);  // sum over columns
  ASSERT_EQ(rows.shape(), (std::vector<size_t>{2}));
  EXPECT_DOUBLE_EQ(*rows.Get({0}), 1 + 2 + 3);
  EXPECT_DOUBLE_EQ(*rows.Get({1}), 4 + 5 + 6);
  DenseArray cols = CollapseDim(a, 0);
  ASSERT_EQ(cols.shape(), (std::vector<size_t>{3}));
  EXPECT_DOUBLE_EQ(*cols.Get({1}), 2 + 5);
  DenseArray scalar = CollapseDim(rows, 0);
  EXPECT_DOUBLE_EQ(scalar.GetLinear(0), 21.0);
}

TEST(ArrayCubeTest, AllGroupingsMatchRelationalCube) {
  // Build parallel representations of the same data and compare every
  // grouping of ArrayCubeAll with the CUBE operator's output.
  Rng rng(11);
  DenseArray base({3, 4, 2});
  Schema s;
  s.AddColumn("a", ValueType::kInt64);
  s.AddColumn("b", ValueType::kInt64);
  s.AddColumn("c", ValueType::kInt64);
  s.AddColumn("v", ValueType::kDouble);
  Table t("t", s);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 4; ++j)
      for (size_t k = 0; k < 2; ++k) {
        double v = double(rng.Uniform(100));
        ASSERT_TRUE(base.Set({i, j, k}, v).ok());
        t.AppendRowUnchecked({Value(int64_t(i)), Value(int64_t(j)),
                              Value(int64_t(k)), Value(v)});
      }

  auto arrays = ArrayCubeAll(base);
  ASSERT_TRUE(arrays.ok());
  EXPECT_EQ(arrays->size(), 8u);

  auto cube = CubeBy(t, {"a", "b", "c"}, {{AggFn::kSum, "v", "sum"}});
  ASSERT_TRUE(cube.ok());

  // Check grouping {a} (mask 0b001 = bit0 for dimension a).
  const DenseArray& by_a = arrays->at(0b001);
  for (const Row& r : cube->rows()) {
    if (!r[0].is_all() && r[1].is_all() && r[2].is_all()) {
      size_t i = size_t(r[0].AsInt64());
      EXPECT_DOUBLE_EQ(*by_a.Get({i}), r[3].AsDouble());
    }
  }
  // Check grouping {b, c} (bits 1 and 2).
  const DenseArray& by_bc = arrays->at(0b110);
  for (const Row& r : cube->rows()) {
    if (r[0].is_all() && !r[1].is_all() && !r[2].is_all()) {
      size_t j = size_t(r[1].AsInt64());
      size_t k = size_t(r[2].AsInt64());
      EXPECT_DOUBLE_EQ(*by_bc.Get({j, k}), r[4 - 1].AsDouble());
    }
  }
  // Grand total (mask 0).
  const DenseArray& total = arrays->at(0);
  double ref = 0;
  for (const Row& r : t.rows()) ref += r[3].AsDouble();
  EXPECT_DOUBLE_EQ(total.GetLinear(0), ref);
}

TEST(ArrayCubeTest, CellCountFormula) {
  EXPECT_EQ(ArrayCubeCells({2, 3}), (2u * 3) + 2 + 3 + 1);
  EXPECT_EQ(ArrayCubeCells({}), 1u);
}

}  // namespace
}  // namespace statcube
