// Tests for in-engine sampling ([OR95], paper §5.6).

#include "statcube/sampling/sampling.h"

#include <gtest/gtest.h>

#include <set>

namespace statcube {
namespace {

Table MakeNumbers(int n) {
  Schema s;
  s.AddColumn("id", ValueType::kInt64);
  s.AddColumn("v", ValueType::kDouble);
  Table t("nums", s);
  for (int i = 0; i < n; ++i)
    t.AppendRowUnchecked({Value(int64_t(i)), Value(double(i) * 2)});
  return t;
}

TEST(ReservoirSampleTest, ExactSizeAndDistinct) {
  Table t = MakeNumbers(1000);
  Table s = ReservoirSample(t, 50, 1);
  EXPECT_EQ(s.num_rows(), 50u);
  std::set<int64_t> ids;
  for (const Row& r : s.rows()) ids.insert(r[0].AsInt64());
  EXPECT_EQ(ids.size(), 50u);  // without replacement
}

TEST(ReservoirSampleTest, SmallInputReturnsEverything) {
  Table t = MakeNumbers(10);
  EXPECT_EQ(ReservoirSample(t, 50, 1).num_rows(), 10u);
  EXPECT_EQ(ReservoirSample(t, 0, 1).num_rows(), 0u);
}

TEST(ReservoirSampleTest, ApproximatelyUniform) {
  // Each of 100 ids should appear in ~10% of 40-of-400 samples... instead,
  // check mean of sampled ids is near the population mean across seeds.
  Table t = MakeNumbers(400);
  double mean_of_means = 0;
  int trials = 50;
  for (int seed = 0; seed < trials; ++seed) {
    Table s = ReservoirSample(t, 40, uint64_t(seed) + 1);
    double m = 0;
    for (const Row& r : s.rows()) m += double(r[0].AsInt64());
    mean_of_means += m / 40.0;
  }
  mean_of_means /= trials;
  EXPECT_NEAR(mean_of_means, 199.5, 15.0);
}

TEST(BernoulliSampleTest, RateRespected) {
  Table t = MakeNumbers(10000);
  auto s = BernoulliSample(t, 0.2, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(double(s->num_rows()), 2000.0, 150.0);
  EXPECT_FALSE(BernoulliSample(t, 1.5, 3).ok());
  EXPECT_FALSE(BernoulliSample(t, -0.1, 3).ok());
  auto all = BernoulliSample(t, 1.0, 3);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 10000u);
}

TEST(BTreeSampleTest, DistinctUniformKeys) {
  BPlusTree<int, int> tree;
  for (int i = 0; i < 5000; ++i) tree.Insert(i, i * 3);
  auto sample = BTreeSample(tree, 100, 5);
  EXPECT_EQ(sample.size(), 100u);
  std::set<int> keys;
  for (const auto& [k, v] : sample) {
    EXPECT_EQ(v, k * 3);
    keys.insert(k);
  }
  EXPECT_EQ(keys.size(), 100u);
  // Rough uniformity: mean key near 2500.
  double mean = 0;
  for (int k : keys) mean += k;
  mean /= 100;
  EXPECT_NEAR(mean, 2500, 600);
}

TEST(BTreeSampleTest, EdgeCases) {
  BPlusTree<int, int> empty;
  EXPECT_TRUE(BTreeSample(empty, 10, 1).empty());
  BPlusTree<int, int> three;
  three.Insert(1, 1);
  three.Insert(2, 2);
  three.Insert(3, 3);
  EXPECT_EQ(BTreeSample(three, 10, 1).size(), 3u);
}

}  // namespace
}  // namespace statcube
