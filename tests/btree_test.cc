// Tests for the B+-tree: ordering, lookup, floor/lower-bound, rank select.

#include "statcube/storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "statcube/common/rng.h"

namespace statcube {
namespace {

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree<int, int> t;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(t.Insert(i * 3, i));
  EXPECT_EQ(t.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    const int* v = t.Find(i * 3);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(t.Find(1), nullptr);
  EXPECT_EQ(t.Find(-5), nullptr);
  EXPECT_EQ(t.Find(3000), nullptr);
}

TEST(BPlusTreeTest, RejectsDuplicates) {
  BPlusTree<int, int> t;
  EXPECT_TRUE(t.Insert(7, 1));
  EXPECT_FALSE(t.Insert(7, 2));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.Find(7), 1);
}

TEST(BPlusTreeTest, RandomOrderInsertStaysSorted) {
  Rng rng(11);
  BPlusTree<uint64_t, uint64_t> t;
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rng.Next() % 100000;
    if (t.Insert(k, k * 2)) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<uint64_t> visited;
  t.ForEach([&](uint64_t k, uint64_t v) {
    visited.push_back(k);
    EXPECT_EQ(v, k * 2);
  });
  EXPECT_EQ(visited, keys);
}

TEST(BPlusTreeTest, LowerBound) {
  BPlusTree<int, int> t;
  for (int i = 0; i < 100; ++i) t.Insert(i * 10, i);
  auto e = t.LowerBound(35);
  ASSERT_TRUE(e.valid());
  EXPECT_EQ(*e.key, 40);
  e = t.LowerBound(40);
  ASSERT_TRUE(e.valid());
  EXPECT_EQ(*e.key, 40);
  e = t.LowerBound(-100);
  ASSERT_TRUE(e.valid());
  EXPECT_EQ(*e.key, 0);
  e = t.LowerBound(991);
  EXPECT_FALSE(e.valid());
}

TEST(BPlusTreeTest, FloorEntry) {
  BPlusTree<int, int> t;
  for (int i = 0; i < 100; ++i) t.Insert(i * 10, i);
  auto e = t.FloorEntry(35);
  ASSERT_TRUE(e.valid());
  EXPECT_EQ(*e.key, 30);
  e = t.FloorEntry(30);
  ASSERT_TRUE(e.valid());
  EXPECT_EQ(*e.key, 30);
  e = t.FloorEntry(100000);
  ASSERT_TRUE(e.valid());
  EXPECT_EQ(*e.key, 990);
  e = t.FloorEntry(-1);
  EXPECT_FALSE(e.valid());
}

TEST(BPlusTreeTest, FloorEntryRandomized) {
  Rng rng(5);
  BPlusTree<uint64_t, int> t;
  std::vector<uint64_t> keys;
  for (int i = 0; i < 3000; ++i) {
    uint64_t k = rng.Next() % 1000000;
    if (t.Insert(k, 0)) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  for (int trial = 0; trial < 500; ++trial) {
    uint64_t q = rng.Next() % 1000000;
    auto it = std::upper_bound(keys.begin(), keys.end(), q);
    auto e = t.FloorEntry(q);
    if (it == keys.begin()) {
      EXPECT_FALSE(e.valid());
    } else {
      ASSERT_TRUE(e.valid());
      EXPECT_EQ(*e.key, *(it - 1));
    }
  }
}

TEST(BPlusTreeTest, SelectByRank) {
  Rng rng(13);
  BPlusTree<uint64_t, uint64_t> t;
  std::vector<uint64_t> keys;
  for (int i = 0; i < 4000; ++i) {
    uint64_t k = rng.Next();
    if (t.Insert(k, k)) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  for (size_t r = 0; r < keys.size(); r += 97) {
    auto e = t.SelectByRank(r);
    ASSERT_TRUE(e.valid());
    EXPECT_EQ(*e.key, keys[r]) << r;
  }
  auto last = t.SelectByRank(keys.size() - 1);
  EXPECT_EQ(*last.key, keys.back());
}

TEST(BPlusTreeTest, HeightGrowsLogarithmically) {
  BPlusTree<int, int, 8> t;  // small fanout to force depth
  for (int i = 0; i < 10000; ++i) t.Insert(i, i);
  EXPECT_GE(t.Height(), 3);
  EXPECT_LE(t.Height(), 8);
  // Still correct after deep growth.
  for (int i = 0; i < 10000; i += 1111) EXPECT_NE(t.Find(i), nullptr);
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree<std::string, int> t;
  t.Insert("banana", 1);
  t.Insert("apple", 2);
  t.Insert("cherry", 3);
  std::vector<std::string> order;
  t.ForEach([&](const std::string& k, int) { order.push_back(k); });
  EXPECT_EQ(order, (std::vector<std::string>{"apple", "banana", "cherry"}));
}

}  // namespace
}  // namespace statcube
