// Tests for automatic aggregation (paper §5.1, Figure 13): the "find the
// average income of engineers in 1980" query expressed as two circled nodes.

#include "statcube/olap/auto_aggregate.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

// Average income by sex x year x profession, with per-cell counts so
// averages aggregate exactly (the paper's sum/count note).
StatisticalObject MakeIncome() {
  StatisticalObject obj("avg_income");
  EXPECT_TRUE(obj.AddDimension(Dimension("sex")).ok());
  EXPECT_TRUE(
      obj.AddDimension(Dimension("year", DimensionKind::kTemporal)).ok());
  Dimension prof("profession");
  ClassificationHierarchy h("by_class", {"profession", "professional_class"});
  EXPECT_TRUE(h.Link(0, Value("chemical eng"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("civil eng"), Value("engineer")).ok());
  EXPECT_TRUE(h.Link(0, Value("junior sec"), Value("secretary")).ok());
  prof.AddHierarchy(h);
  EXPECT_TRUE(obj.AddDimension(prof).ok());
  EXPECT_TRUE(obj.AddMeasure({"avg_income", "dollars",
                              MeasureType::kValuePerUnit, AggFn::kAvg,
                              "count"})
                  .ok());
  EXPECT_TRUE(
      obj.AddMeasure({"count", "", MeasureType::kFlow, AggFn::kSum, ""}).ok());

  // Incomes chosen so the expected values are easy to compute. All cells
  // have count 1 except one with count 3.
  auto add = [&](const char* sex, int year, const char* p, double income,
                 int count) {
    EXPECT_TRUE(obj.AddCell({Value(sex), Value(year), Value(p)},
                            {Value(income), Value(count)})
                    .ok());
  };
  add("M", 1980, "chemical eng", 100, 1);
  add("M", 1980, "civil eng", 200, 3);  // weight 3
  add("F", 1980, "chemical eng", 300, 1);
  add("F", 1980, "civil eng", 400, 1);
  add("M", 1980, "junior sec", 50, 1);
  add("M", 1981, "chemical eng", 999, 1);
  return obj;
}

TEST(AutoAggregateTest, Figure13Query) {
  auto obj = MakeIncome();
  // "average income of engineers in 1980": circle year=1980 and the
  // non-leaf node professional_class=engineer; sex is summarized over.
  AutoQuery q;
  q.selections = {{"year", Value(1980)},
                  {"professional_class", Value("engineer")}};
  q.measure = "avg_income";
  auto r = AutoAggregate(obj, q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Weighted mean over the four 1980 engineer cells:
  // (100*1 + 200*3 + 300*1 + 400*1) / 6 = 1400/6.
  EXPECT_NEAR(r->value.AsDouble(), 1400.0 / 6.0, 1e-9);
  // The inferred plan mentions every implied step.
  std::string plan;
  for (const auto& s : r->inferred_steps) plan += s + "\n";
  EXPECT_NE(plan.find("S-aggregate"), std::string::npos);
  EXPECT_NE(plan.find("S-select"), std::string::npos);
  EXPECT_NE(plan.find("S-project sex"), std::string::npos);
}

TEST(AutoAggregateTest, LeafSelection) {
  auto obj = MakeIncome();
  AutoQuery q;
  q.selections = {{"profession", Value("junior sec")}};
  q.measure = "avg_income";
  auto r = AutoAggregate(obj, q);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->value.AsDouble(), 50.0);
}

TEST(AutoAggregateTest, NoSelectionsGivesGrandSummary) {
  auto obj = MakeIncome();
  AutoQuery q;
  q.measure = "count";
  auto r = AutoAggregate(obj, q);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->value.AsDouble(), 8.0);  // 1+3+1+1+1+1
}

TEST(AutoAggregateTest, EmptySelectionYieldsNull) {
  auto obj = MakeIncome();
  AutoQuery q;
  q.selections = {{"year", Value(1999)}};
  q.measure = "avg_income";
  auto r = AutoAggregate(obj, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->value.is_null());
}

TEST(AutoAggregateTest, UnknownAttributeOrMeasure) {
  auto obj = MakeIncome();
  AutoQuery q;
  q.selections = {{"ghost", Value(1)}};
  q.measure = "avg_income";
  EXPECT_FALSE(AutoAggregate(obj, q).ok());
  q.selections = {};
  q.measure = "ghost";
  EXPECT_FALSE(AutoAggregate(obj, q).ok());
}

}  // namespace
}  // namespace statcube
