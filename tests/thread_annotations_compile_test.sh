#!/usr/bin/env bash
# Negative-compile driver for thread_annotations_compile_test.cc (see the
# header comment there for the contract). Needs clang: the annotations are
# no-ops under g++, so without clang the test SKIPs (exit 77, mapped via
# ctest SKIP_RETURN_CODE).
#
# Usage: thread_annotations_compile_test.sh <repo-root>

set -uo pipefail

ROOT="${1:-.}"
SRC="$ROOT/tests/thread_annotations_compile_test.cc"
[ -f "$SRC" ] || { echo "error: $SRC not found" >&2; exit 1; }

CXX="${CLANGXX:-}"
if [ -z "$CXX" ]; then
  for cand in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
              clang++-15 clang++-14; do
    if command -v "$cand" >/dev/null; then CXX="$cand"; break; fi
  done
fi
if [ -z "$CXX" ]; then
  echo "SKIP: clang++ not found; -Wthread-safety is clang-only" >&2
  exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -Wthread-safety -Werror -I"$ROOT/src")

echo "[1/2] correctly-locked code must compile clean ($CXX)"
if ! "$CXX" "${FLAGS[@]}" "$SRC"; then
  echo "FAIL: annotated wrappers reject correctly-locked code" >&2
  exit 1
fi

echo "[2/2] lock-discipline violations must be rejected"
if "$CXX" "${FLAGS[@]}" -DSTATCUBE_EXPECT_THREAD_SAFETY_ERROR "$SRC" \
    2>/dev/null; then
  echo "FAIL: deliberately unguarded access compiled clean — the" >&2
  echo "      annotation layer is not reaching the analyzer" >&2
  exit 1
fi

echo "PASS: analysis accepts locked code and rejects unlocked code"
