// Edge-path tests for the 2-D renderer and table printing: multiple column
// dimensions with spanning headers and marginals (Figure 1's "more than one
// dimension must be represented by the rows and the columns"), label
// suppression, truncation.

#include <gtest/gtest.h>

#include "statcube/core/table_render.h"

namespace statcube {
namespace {

StatisticalObject MakeFourDim() {
  StatisticalObject obj("pop");
  for (const char* d : {"state", "sex", "race", "age"})
    EXPECT_TRUE(obj.AddDimension(Dimension(d)).ok());
  EXPECT_TRUE(
      obj.AddMeasure({"n", "", MeasureType::kFlow, AggFn::kSum, ""}).ok());
  int v = 0;
  for (const char* st : {"CA", "NV"})
    for (const char* sex : {"M", "F"})
      for (const char* race : {"r1", "r2"})
        for (const char* age : {"young", "old"})
          EXPECT_TRUE(obj.AddCell(
                             {Value(st), Value(sex), Value(race), Value(age)},
                             {Value(++v)})
                          .ok());
  return obj;  // values 1..16, total 136
}

TEST(RenderEdgeTest, TwoColumnDimensionsSpanHeaders) {
  auto obj = MakeFourDim();
  Render2DOptions opt;
  opt.row_dims = {"state", "sex"};
  opt.col_dims = {"race", "age"};
  opt.measure = "n";
  auto out = Render2D(obj, opt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Two header lines: race spans, age repeats under each race.
  EXPECT_NE(out->find("r1"), std::string::npos);
  EXPECT_NE(out->find("young"), std::string::npos);
  // Every cell value 1..16 appears.
  for (int v : {1, 7, 16}) {
    EXPECT_NE(out->find(std::to_string(v)), std::string::npos) << v;
  }
}

TEST(RenderEdgeTest, TwoColumnDimensionsWithMarginals) {
  auto obj = MakeFourDim();
  Render2DOptions opt;
  opt.row_dims = {"state", "sex"};
  opt.col_dims = {"race", "age"};
  opt.measure = "n";
  opt.marginals = true;
  auto out = Render2D(obj, opt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Grand total 1+...+16 = 136.
  EXPECT_NE(out->find("136"), std::string::npos);
  EXPECT_NE(out->find("total"), std::string::npos);
}

TEST(RenderEdgeTest, AverageMeasureRendering) {
  StatisticalObject obj("inc");
  ASSERT_TRUE(obj.AddDimension(Dimension("a")).ok());
  ASSERT_TRUE(obj.AddDimension(Dimension("b")).ok());
  ASSERT_TRUE(obj.AddMeasure({"avg_income", "dollars",
                              MeasureType::kValuePerUnit, AggFn::kAvg, ""})
                  .ok());
  ASSERT_TRUE(obj.AddCell({Value("a1"), Value("b1")}, {Value(10.0)}).ok());
  ASSERT_TRUE(obj.AddCell({Value("a1"), Value("b2")}, {Value(30.0)}).ok());
  Render2DOptions opt;
  opt.row_dims = {"a"};
  opt.col_dims = {"b"};
  opt.measure = "avg_income";
  opt.marginals = true;
  auto out = Render2D(obj, opt);
  ASSERT_TRUE(out.ok());
  // The marginal uses the avg function: (10+30)/2 = 20.
  EXPECT_NE(out->find("20"), std::string::npos);
  EXPECT_NE(out->find("(avg)"), std::string::npos);
}

TEST(TablePrintTest, TruncationAndAlignment) {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  s.AddColumn("v", ValueType::kInt64);
  Table t("many", s);
  for (int i = 0; i < 100; ++i)
    t.AppendRowUnchecked({Value("key" + std::to_string(i)), Value(i)});
  std::string out = t.ToString(5);
  EXPECT_NE(out.find("many (100 rows)"), std::string::npos);
  EXPECT_NE(out.find("... (95 more rows)"), std::string::npos);
  EXPECT_NE(out.find("key4"), std::string::npos);
  EXPECT_EQ(out.find("key5 "), std::string::npos);  // truncated away
}

}  // namespace
}  // namespace statcube
