// Tests for the serving subsystem's building blocks: the JSON request
// parser (serve/json_value.h), per-tenant admission control with its quota
// edge cases (serve/tenant_registry.h), and the bounded execute-or-shed
// gate (serve/admission_queue.h) — including a concurrent admit/release
// hammer that the TSan CI job runs.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.h"
#include "statcube/serve/admission_queue.h"
#include "statcube/serve/json_value.h"
#include "statcube/serve/tenant_registry.h"

namespace statcube::serve {
namespace {

// ------------------------------------------------------------- ParseJson

TEST(JsonValueTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_EQ(ParseJson("42")->AsInt(), 42);
  EXPECT_EQ(ParseJson("-7")->AsInt(), -7);
  EXPECT_TRUE(ParseJson("42")->is_int());
  EXPECT_FALSE(ParseJson("42.5")->is_int());
  EXPECT_DOUBLE_EQ(ParseJson("42.5")->AsDouble(), 42.5);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonValueTest, ParsesNestedStructures) {
  auto v = ParseJson(R"({"a":[1,2,{"b":"c"}],"d":{"e":null},"f":true})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[0].AsInt(), 1);
  EXPECT_EQ(a->AsArray()[2].Find("b")->AsString(), "c");
  EXPECT_TRUE(v->Find("d")->Find("e")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonValueTest, StringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\nd\te\u0041")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsString(), "a\"b\\c\nd\teA");
}

TEST(JsonValueTest, LastDuplicateKeyWins) {
  auto v = ParseJson(R"({"k":1,"k":2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("k")->AsInt(), 2);
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",           "[1,]",        "{\"a\":}",
      "{\"a\" 1}",  "{'a':1}",     "tru",         "nul",
      "01",         "1.",          "1e",          "+1",
      "\"unterminated", "\"bad\\x\"", "\"\\u12g4\"", "{} trailing",
      "\x01",       "[1 2]",
  };
  for (const char* doc : bad) {
    auto v = ParseJson(doc);
    EXPECT_FALSE(v.ok()) << "accepted: " << doc;
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument) << doc;
    }
  }
}

TEST(JsonValueTest, ErrorsCarryByteOffset) {
  auto v = ParseJson("{\"a\": oops}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("byte 6"), std::string::npos)
      << v.status().ToString();
}

TEST(JsonValueTest, DepthLimitStopsHostileNesting) {
  std::string hostile(10000, '[');
  auto v = ParseJson(hostile);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("nesting too deep"), std::string::npos);
  // A document within the limit parses.
  EXPECT_TRUE(ParseJson("[[[[[[[[[[1]]]]]]]]]]").ok());
}

TEST(JsonValueTest, DumpRoundTripsAndIsValidJson) {
  const std::string doc =
      R"({"q":"SELECT \"x\"","n":3,"f":2.5,"b":true,"z":null,"a":[1,"two"]})";
  auto v = ParseJson(doc);
  ASSERT_TRUE(v.ok());
  std::string dumped = v->Dump();
  EXPECT_TRUE(statcube::JsonChecker(dumped).Valid()) << dumped;
  // Dump -> parse -> dump is a fixed point.
  auto v2 = ParseJson(dumped);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->Dump(), dumped);
}

// ------------------------------------------------------- TenantRegistry

// Fixed, arbitrary start instant for the deterministic AdmitAt tests.
constexpr uint64_t kT0 = 1'000'000'000;

TEST(TenantRegistryTest, ConcurrencyGateAndRelease) {
  TenantQuota q;
  q.max_concurrent = 2;
  TenantRegistry reg(q);
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  Admission third = reg.AdmitAt("t", kT0);
  EXPECT_EQ(third.outcome, AdmitOutcome::kConcurrencyExceeded);
  // Concurrency does not recover with time — no Retry-After hint.
  EXPECT_EQ(third.retry_after_ms, 0u);
  reg.ReleaseAt("t", kT0, /*bytes=*/100, /*ok=*/true);
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());

  std::vector<TenantStats> stats = reg.Snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].active, 2);
  EXPECT_EQ(stats[0].admitted, 3u);
  EXPECT_EQ(stats[0].rejected_concurrency, 1u);
  EXPECT_EQ(stats[0].bytes_served, 100u);
}

TEST(TenantRegistryTest, TenantsAreIndependent) {
  TenantQuota q;
  q.max_concurrent = 1;
  TenantRegistry reg(q);
  EXPECT_TRUE(reg.AdmitAt("a", kT0).ok());
  EXPECT_FALSE(reg.AdmitAt("a", kT0).ok());
  EXPECT_TRUE(reg.AdmitAt("b", kT0).ok());  // b has its own budget
  EXPECT_EQ(reg.TenantCount(), 2u);
}

// Rate-budget-exactly-exhausted edge: with qps=1, burst=1, the single token
// is spent at t0; at t0 + 999999 us the bucket holds 0.999999 tokens — still
// a rejection — and at exactly t0 + 1 s the refilled token admits.
TEST(TenantRegistryTest, TokenBucketRefillBoundary) {
  TenantQuota q;
  q.max_concurrent = 0;  // isolate the rate gate
  q.rate_qps = 1;
  q.burst = 1;
  TenantRegistry reg(q);
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  reg.ReleaseAt("t", kT0, 0, true);

  Admission just_under = reg.AdmitAt("t", kT0 + 999'999);
  EXPECT_EQ(just_under.outcome, AdmitOutcome::kRateLimited);
  // 1e-6 tokens short at 1 token/s -> ceil to 1 ms.
  EXPECT_EQ(just_under.retry_after_ms, 1u);

  EXPECT_TRUE(reg.AdmitAt("t", kT0 + 1'000'000).ok());
  reg.ReleaseAt("t", kT0 + 1'000'000, 0, true);

  std::vector<TenantStats> stats = reg.Snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].admitted, 2u);
  EXPECT_EQ(stats[0].rejected_rate, 1u);
}

TEST(TenantRegistryTest, RateRejectionReportsRefillTime) {
  TenantQuota q;
  q.max_concurrent = 0;
  q.rate_qps = 2;  // a token every 500 ms
  q.burst = 1;
  TenantRegistry reg(q);
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  Admission rejected = reg.AdmitAt("t", kT0);
  EXPECT_EQ(rejected.outcome, AdmitOutcome::kRateLimited);
  EXPECT_EQ(rejected.retry_after_ms, 500u);
}

// Burst capacity: tokens accumulate while idle but never beyond `burst`.
TEST(TenantRegistryTest, BurstCapsAccumulation) {
  TenantQuota q;
  q.max_concurrent = 0;
  q.rate_qps = 1;
  q.burst = 2;
  TenantRegistry reg(q);
  // A long idle period would fill 100 tokens; the cap keeps 2.
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  reg.ReleaseAt("t", kT0, 0, true);
  EXPECT_TRUE(reg.AdmitAt("t", kT0 + 100'000'000).ok());
  EXPECT_TRUE(reg.AdmitAt("t", kT0 + 100'000'000).ok());
  EXPECT_EQ(reg.AdmitAt("t", kT0 + 100'000'000).outcome,
            AdmitOutcome::kRateLimited);
}

// Byte-budget-exactly-exhausted edge: the post-paid model admits while the
// bucket is positive and charges at release. A response that spends the
// bucket to exactly zero blocks the next admission until credit accrues.
TEST(TenantRegistryTest, ByteBudgetExactlyExhausted) {
  TenantQuota q;
  q.max_concurrent = 0;
  q.bytes_per_sec = 1000;
  q.byte_burst = 1000;
  TenantRegistry reg(q);
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  reg.ReleaseAt("t", kT0, /*bytes=*/1000, true);  // bucket now exactly 0
  Admission broke = reg.AdmitAt("t", kT0);
  EXPECT_EQ(broke.outcome, AdmitOutcome::kByteBudgetExhausted);
  // Needs debt (0) cleared plus 1 byte of credit: 1 ms at 1000 B/s.
  EXPECT_EQ(broke.retry_after_ms, 1u);
  // 1 ms later one byte of credit has accrued: positive bucket admits.
  EXPECT_TRUE(reg.AdmitAt("t", kT0 + 1000).ok());
}

// Debt: one enormous response pushes the bucket negative and the hint
// reflects how long the debt takes to clear.
TEST(TenantRegistryTest, ByteDebtDelaysNextAdmission) {
  TenantQuota q;
  q.max_concurrent = 0;
  q.bytes_per_sec = 1000;
  q.byte_burst = 1000;
  TenantRegistry reg(q);
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  reg.ReleaseAt("t", kT0, /*bytes=*/3000, true);  // bucket now -2000
  Admission in_debt = reg.AdmitAt("t", kT0);
  EXPECT_EQ(in_debt.outcome, AdmitOutcome::kByteBudgetExhausted);
  // 2000 B debt + 1 B credit at 1000 B/s -> 2001 ms.
  EXPECT_EQ(in_debt.retry_after_ms, 2001u);
  EXPECT_EQ(reg.AdmitAt("t", kT0 + 2'000'000).outcome,
            AdmitOutcome::kByteBudgetExhausted);
  EXPECT_TRUE(reg.AdmitAt("t", kT0 + 2'001'000).ok());
}

// Gates are evaluated before any state commits: a byte-gate rejection must
// not burn a rate token.
TEST(TenantRegistryTest, RejectionAtLaterGateSpendsNoToken) {
  TenantQuota q;
  q.max_concurrent = 0;
  q.rate_qps = 1;
  q.burst = 1;
  q.bytes_per_sec = 1000;
  q.byte_burst = 1000;
  TenantRegistry reg(q);
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  reg.ReleaseAt("t", kT0 + 1'000'000, /*bytes=*/5000, true);  // deep debt
  // Rate bucket refilled to 1.0 by t0+1s, but the byte gate rejects...
  EXPECT_EQ(reg.AdmitAt("t", kT0 + 1'000'000).outcome,
            AdmitOutcome::kByteBudgetExhausted);
  // ...and once the debt clears, the unspent rate token still admits at the
  // same instant-equivalent state.
  EXPECT_TRUE(reg.AdmitAt("t", kT0 + 6'000'000).ok());
}

TEST(TenantRegistryTest, ConfigureTightensAndReclamps) {
  TenantRegistry reg;  // permissive default quota
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  reg.ReleaseAt("t", kT0, 0, true);
  TenantQuota tight;
  tight.max_concurrent = 0;
  tight.rate_qps = 1;
  tight.burst = 1;
  reg.Configure("t", tight);
  // Buckets re-clamped to the new (smaller) capacity: one admit passes,
  // the next is rate-limited.
  EXPECT_TRUE(reg.AdmitAt("t", kT0).ok());
  EXPECT_EQ(reg.AdmitAt("t", kT0).outcome, AdmitOutcome::kRateLimited);
}

TEST(TenantRegistryTest, ToJsonIsValidAndListsTenants) {
  TenantRegistry reg;
  (void)reg.AdmitAt("alpha", kT0);
  (void)reg.AdmitAt("beta", kT0);
  reg.NoteShed("beta");
  std::string json = reg.ToJson();
  EXPECT_TRUE(statcube::JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"tenant\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"shed\":1"), std::string::npos);
}

TEST(TenantRegistryTest, ReleaseWithoutAdmitIsHarmless) {
  TenantRegistry reg;
  reg.ReleaseAt("ghost", kT0, 10, true);  // unknown tenant: ignored
  EXPECT_EQ(reg.TenantCount(), 0u);
  (void)reg.AdmitAt("t", kT0);
  reg.ReleaseAt("t", kT0, 0, true);
  reg.ReleaseAt("t", kT0, 0, true);  // double release: active clamps at 0
  EXPECT_EQ(reg.Snapshot()[0].active, 0);
}

// Concurrent admit/release hammer across tenants — the TSan CI job runs
// this test under -fsanitize=thread; invariants are checked after the dust
// settles (every admit paired with a release -> zero active, and the
// admitted/rejected split must add up).
TEST(TenantRegistryTest, ConcurrentAdmitReleaseHammer) {
  TenantQuota q;
  q.max_concurrent = 4;
  q.rate_qps = 1e9;  // effectively unlimited, but the bucket path executes
  q.burst = 1e9;
  TenantRegistry reg(q);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<uint64_t> admitted{0}, rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &admitted, &rejected, t] {
      const std::string tenant = "tenant" + std::to_string(t % 3);
      for (int i = 0; i < kIters; ++i) {
        Admission a = reg.Admit(tenant);
        if (a.ok()) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          reg.Release(tenant, 64, (i % 7) != 0);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  uint64_t total_admitted = 0, total_rejected = 0, total_bytes = 0;
  for (const TenantStats& s : reg.Snapshot()) {
    EXPECT_EQ(s.active, 0) << s.name;
    total_admitted += s.admitted;
    total_rejected += s.rejected_total();
    total_bytes += s.bytes_served;
  }
  EXPECT_EQ(total_admitted, admitted.load());
  EXPECT_EQ(total_rejected, rejected.load());
  EXPECT_EQ(total_admitted + total_rejected, uint64_t(kThreads) * kIters);
  EXPECT_EQ(total_bytes, admitted.load() * 64);
}

// ------------------------------------------------------- AdmissionQueue

TEST(AdmissionQueueTest, AdmitsUpToMaxActive) {
  AdmissionQueue gate({.max_active = 2, .max_queued = 0, .max_wait_ms = 50});
  EXPECT_EQ(gate.Enter(), EnterOutcome::kAdmitted);
  EXPECT_EQ(gate.Enter(), EnterOutcome::kAdmitted);
  EXPECT_EQ(gate.active(), 2);
  // max_queued = 0: the third caller sheds immediately, no waiting.
  EXPECT_EQ(gate.Enter(), EnterOutcome::kShedQueueFull);
  EXPECT_EQ(gate.sheds(), 1u);
  gate.Exit();
  EXPECT_EQ(gate.Enter(), EnterOutcome::kAdmitted);
  gate.Exit();
  gate.Exit();
  EXPECT_EQ(gate.active(), 0);
}

TEST(AdmissionQueueTest, QueuedWaiterGetsSlotOnExit) {
  AdmissionQueue gate({.max_active = 1, .max_queued = 4, .max_wait_ms =
                           10000});
  ASSERT_EQ(gate.Enter(), EnterOutcome::kAdmitted);
  std::atomic<int> result{-1};
  std::thread waiter([&] { result.store(int(gate.Enter())); });
  // Poll until the waiter is queued (no sleeps-as-synchronization: the
  // queued() gauge is the condition).
  while (gate.queued() == 0) std::this_thread::yield();
  gate.Exit();
  waiter.join();
  EXPECT_EQ(EnterOutcome(result.load()), EnterOutcome::kAdmitted);
  EXPECT_EQ(gate.active(), 1);
  gate.Exit();
}

TEST(AdmissionQueueTest, WaitBudgetExpiryShedsWithTimeout) {
  AdmissionQueue gate({.max_active = 1, .max_queued = 4, .max_wait_ms = 30});
  ASSERT_EQ(gate.Enter(), EnterOutcome::kAdmitted);
  // Nobody will Exit: the queued waiter must give up after max_wait_ms.
  EXPECT_EQ(gate.Enter(), EnterOutcome::kShedTimeout);
  EXPECT_EQ(gate.queued(), 0);
  EXPECT_EQ(gate.sheds(), 1u);
  gate.Exit();
}

TEST(AdmissionQueueTest, QueueFullShedsImmediately) {
  AdmissionQueue gate({.max_active = 1, .max_queued = 1, .max_wait_ms =
                           10000});
  ASSERT_EQ(gate.Enter(), EnterOutcome::kAdmitted);
  std::thread waiter([&] { (void)gate.Enter(); });
  while (gate.queued() == 0) std::this_thread::yield();
  // Queue holds its one allowed waiter: the next caller sheds at once.
  EXPECT_EQ(gate.Enter(), EnterOutcome::kShedQueueFull);
  gate.Exit();
  waiter.join();
  gate.Exit();
}

// Concurrent stampede: N threads race through a narrow gate; afterwards
// every admitted Enter was paired with an Exit and the accounting is
// conserved. Runs under TSan in CI.
TEST(AdmissionQueueTest, ConcurrentStampedeConservesSlots) {
  AdmissionQueue gate({.max_active = 3, .max_queued = 8, .max_wait_ms = 5000});
  constexpr int kThreads = 12;
  constexpr int kIters = 300;
  std::atomic<uint64_t> admitted{0}, shed{0};
  std::atomic<int> in_flight{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        EnterOutcome e = gate.Enter();
        if (e == EnterOutcome::kAdmitted) {
          int now = in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
          EXPECT_LE(now, 3);  // never more than max_active inside
          admitted.fetch_add(1, std::memory_order_relaxed);
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
          gate.Exit();
        } else {
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(gate.active(), 0);
  EXPECT_EQ(gate.queued(), 0);
  EXPECT_EQ(admitted.load() + shed.load(), uint64_t(kThreads) * kIters);
  EXPECT_EQ(gate.sheds(), shed.load());
}

}  // namespace
}  // namespace statcube::serve
