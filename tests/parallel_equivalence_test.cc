// Serial/parallel equivalence: every parallel kernel must produce output
// BIT-identical to its serial counterpart on exact-sum measures, and
// bit-identical to itself at any thread count (1/2/4/8) on every measure —
// the determinism contract of statcube/exec (parallel_kernels.h, DESIGN.md
// §6). Covered across all four paper workloads (census, hmo, retail,
// stocks), the query path, the cube backends, the MOLAP reductions, and the
// materialization layer.

#include "statcube/exec/parallel_kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "statcube/materialize/greedy.h"
#include "statcube/materialize/lattice.h"
#include "statcube/materialize/view_store.h"
#include "statcube/molap/dense_array.h"
#include "statcube/olap/backend.h"
#include "statcube/query/parser.h"
#include "statcube/relational/cube_operator.h"
#include "statcube/relational/expression.h"
#include "statcube/relational/operators.h"
#include "statcube/workload/census.h"
#include "statcube/workload/hmo.h"
#include "statcube/workload/retail.h"
#include "statcube/workload/stocks.h"

namespace statcube {
namespace {

// Bit-exact table equality: same name, schema, row count, and per cell the
// same Value type with doubles compared by bit pattern (no epsilon).
void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& what) {
  EXPECT_EQ(a.name(), b.name()) << what;
  ASSERT_TRUE(a.schema() == b.schema()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      const Value& x = a.row(i)[c];
      const Value& y = b.row(i)[c];
      ASSERT_EQ(x.type(), y.type())
          << what << " row " << i << " col " << c;
      if (x.type() == ValueType::kDouble) {
        double dx = x.AsDouble(), dy = y.AsDouble();
        uint64_t bx, by;
        std::memcpy(&bx, &dx, sizeof bx);
        std::memcpy(&by, &dy, sizeof by);
        ASSERT_EQ(bx, by) << what << " row " << i << " col " << c
                          << ": " << dx << " vs " << dy;
      } else {
        ASSERT_TRUE(x == y) << what << " row " << i << " col " << c << ": "
                            << x.ToString() << " vs " << y.ToString();
      }
    }
  }
}

exec::ExecOptions Threads(int t, size_t morsel_rows = 512) {
  exec::ExecOptions o;
  o.threads = t;
  o.morsel_rows = morsel_rows;  // small: several morsels even on small data
  return o;
}

// One shared instance of each paper workload (§3) — built once, the default
// sizes give multi-morsel tables where it matters (census 5184 rows, retail
// 8000 fact rows).
struct Workloads {
  StatisticalObject census, hmo, stocks;
  RetailData retail;

  static const Workloads& Get() {
    static Workloads* w = [] {
      auto* out = new Workloads();
      out->census = MakeCensusWorkload().ValueOrDie();
      out->hmo = MakeHmoWorkload().ValueOrDie();
      out->stocks = MakeStockWorkload().ValueOrDie();
      out->retail = MakeRetailWorkload().ValueOrDie();
      return out;
    }();
    return *w;
  }
};

// ---------------------------------------------------------------------------
// Kernel level: Select / GroupBy / CubeBy / RollupBy vs their parallel
// counterparts, on every workload's data table.

TEST(KernelEquivalence, SelectMatchesSerial) {
  const auto& w = Workloads::Get();
  struct Case {
    const Table* table;
    std::string column;
    Value value;
  } cases[] = {
      {&w.retail.flat, "city", Value("city1")},
      {&w.census.data(), "sex", Value("M")},
      {&w.hmo.data(), "hospital", Value("hosp0")},
      {&w.stocks.data(), "stock", Value("TKR3")},
  };
  for (const auto& c : cases) {
    auto pred = expr::ColumnEq(c.table->schema(), c.column, c.value);
    ASSERT_TRUE(pred.ok()) << pred.status().ToString();
    Table serial = Select(*c.table, *pred);
    for (int t : {1, 2, 4, 8}) {
      Table parallel = exec::ParallelSelect(*c.table, *pred, Threads(t));
      ExpectTablesIdentical(serial, parallel,
                            c.table->name() + " select@" + std::to_string(t));
    }
  }
}

TEST(KernelEquivalence, GroupByMatchesSerialOnEveryWorkload) {
  const auto& w = Workloads::Get();
  struct Case {
    const Table* table;
    std::vector<std::string> group_cols;
    std::vector<AggSpec> aggs;
  } cases[] = {
      // Every workload measure is integer-valued except the stock close
      // price, so these sums are exact and serial == parallel bit-for-bit.
      {&w.retail.flat,
       {"category", "city"},
       {{AggFn::kSum, "amount", ""},
        {AggFn::kCount, "qty", ""},
        {AggFn::kMin, "amount", ""},
        {AggFn::kMax, "amount", ""}}},
      {&w.census.data(),
       {"race", "sex"},
       {{AggFn::kSum, "population", ""}, {AggFn::kAvg, "population", ""}}},
      {&w.hmo.data(),
       {"hospital"},
       {{AggFn::kSum, "cost", ""}, {AggFn::kSum, "visits", ""}}},
      {&w.stocks.data(),
       {"stock"},
       {{AggFn::kSum, "volume", ""}, {AggFn::kCountAll, "", ""}}},
  };
  for (const auto& c : cases) {
    auto serial = GroupBy(*c.table, c.group_cols, c.aggs);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int t : {1, 2, 4, 8}) {
      auto parallel =
          exec::ParallelGroupBy(*c.table, c.group_cols, c.aggs, Threads(t));
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectTablesIdentical(*serial, *parallel,
                            c.table->name() + "@" + std::to_string(t));
    }
  }
}

TEST(KernelEquivalence, CubeByMatchesSerial) {
  const auto& w = Workloads::Get();
  std::vector<AggSpec> aggs = {{AggFn::kSum, "amount", ""},
                               {AggFn::kCount, "qty", ""}};
  auto serial = CubeBy(w.retail.flat, {"category", "city", "month"}, aggs);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int t : {1, 2, 4, 8}) {
    auto parallel = exec::ParallelCubeBy(
        w.retail.flat, {"category", "city", "month"}, aggs, Threads(t));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectTablesIdentical(*serial, *parallel, "cube@" + std::to_string(t));
  }
}

TEST(KernelEquivalence, RollupByMatchesSerial) {
  const auto& w = Workloads::Get();
  std::vector<AggSpec> aggs = {{AggFn::kSum, "population", ""}};
  auto serial = RollupBy(w.census.data(), {"race", "sex", "age_group"}, aggs);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int t : {1, 2, 4, 8}) {
    auto parallel = exec::ParallelRollupBy(
        w.census.data(), {"race", "sex", "age_group"}, aggs, Threads(t));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectTablesIdentical(*serial, *parallel, "rollup@" + std::to_string(t));
  }
}

TEST(KernelEquivalence, ThreadCountInvariantOnInexactMeasure) {
  // avg(close) sums non-integer doubles: parallel output need not match the
  // serial operator bit-for-bit, but it MUST match itself at every thread
  // count — morsel boundaries and merge order never depend on the workers.
  const auto& w = Workloads::Get();
  std::vector<AggSpec> aggs = {{AggFn::kAvg, "close", ""},
                               {AggFn::kSum, "close", ""}};
  auto baseline = exec::ParallelGroupBy(w.stocks.data(), {"stock"}, aggs,
                                        Threads(1, /*morsel_rows=*/64));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (int t : {2, 4, 8}) {
    auto other = exec::ParallelGroupBy(w.stocks.data(), {"stock"}, aggs,
                                       Threads(t, /*morsel_rows=*/64));
    ASSERT_TRUE(other.ok()) << other.status().ToString();
    ExpectTablesIdentical(*baseline, *other, "close@" + std::to_string(t));
  }
}

// ---------------------------------------------------------------------------
// Query path: ExecuteQuery vs ExecuteQueryParallel on the §5.1 language,
// across all four workloads.

void ExpectQueryEquivalent(const StatisticalObject& obj,
                           const std::string& text) {
  auto parsed = ParseQuery(text);
  ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
  auto serial = ExecuteQuery(obj, *parsed);
  ASSERT_TRUE(serial.ok()) << text << ": " << serial.status().ToString();
  for (int t : {1, 2, 4, 8}) {
    auto parallel = ExecuteQueryParallel(obj, *parsed, t);
    ASSERT_TRUE(parallel.ok()) << text << ": " << parallel.status().ToString();
    ExpectTablesIdentical(*serial, *parallel,
                          text + " @" + std::to_string(t) + " threads");
  }
}

TEST(QueryEquivalence, Retail) {
  const auto& obj = Workloads::Get().retail.object;
  for (const char* q : {
           "SELECT sum(amount) BY city",
           "SELECT sum(qty), avg(amount) BY category",
           "SELECT sum(amount) BY month WHERE city = 'city1'",
           "SELECT sum(amount) BY CUBE(city, month)",
           "SELECT count() WHERE price_range = 'premium'",
           "SELECT sum(amount), sum(qty) BY CUBE(category, city, year)",
       })
    ExpectQueryEquivalent(obj, q);
}

TEST(QueryEquivalence, CensusQueries) {
  const auto& obj = Workloads::Get().census;
  for (const char* q : {
           "SELECT sum(population) BY race",
           "SELECT sum(population) BY state",
           "SELECT sum(population) BY CUBE(race, sex)",
           "SELECT sum(population) BY age_group WHERE sex = 'M'",
       })
    ExpectQueryEquivalent(obj, q);
}

TEST(QueryEquivalence, HmoQueries) {
  const auto& obj = Workloads::Get().hmo;
  for (const char* q : {
           "SELECT sum(cost), sum(visits) BY hospital",
           "SELECT sum(cost) BY CUBE(hospital, month)",
           "SELECT sum(visits) BY disease",
       })
    ExpectQueryEquivalent(obj, q);
}

TEST(QueryEquivalence, StockQueries) {
  const auto& obj = Workloads::Get().stocks;
  for (const char* q : {
           "SELECT sum(volume) BY stock",
           "SELECT avg(close) BY stock",
           "SELECT sum(volume) BY CUBE(stock, day)",
       })
    ExpectQueryEquivalent(obj, q);
}

// ---------------------------------------------------------------------------
// Backends: MOLAP and ROLAP GroupBySum with threads=1 vs threads=4.

TEST(BackendEquivalence, GroupBySumThreadInvariant) {
  const auto& w = Workloads::Get();
  auto molap = MakeMolapBackend(w.retail.object, "amount").ValueOrDie();
  auto rolap = MakeRolapBackend(w.retail.object, "amount").ValueOrDie();
  auto indexed = MakeRolapBackend(w.retail.object, "amount",
                                  {.build_bitmap_indexes = true})
                     .ValueOrDie();
  std::vector<CubeQuery> queries;
  {
    CubeQuery q;
    q.group_dims = {"store"};
    queries.push_back(q);
    q.group_dims = {"product", "store"};
    q.filters = {{"day", Value("1996-1-3")}};
    queries.push_back(q);
    q.group_dims = {"day"};
    q.filters = {{"product", Value("prod1")}};
    queries.push_back(q);
  }
  for (CubeBackend* backend : {molap.get(), rolap.get(), indexed.get()}) {
    for (CubeQuery q : queries) {
      q.threads = 1;
      auto serial = backend->GroupBySum(q);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (int t : {2, 4}) {
        q.threads = t;
        auto parallel = backend->GroupBySum(q);
        ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
        ExpectTablesIdentical(*serial, *parallel,
                              backend->name() + "@" + std::to_string(t));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MOLAP reductions: SumRange and the Figure 9 marginals.

DenseArray MakeArray(std::vector<size_t> shape, bool integer_cells) {
  DenseArray a(std::move(shape));
  for (size_t i = 0; i < a.num_cells(); ++i)
    a.SetLinear(i, integer_cells ? double(i % 97)
                                 : 0.1 * double(i % 97) + 0.003);
  return a;
}

TEST(MolapEquivalence, SumRangeMatchesSerial) {
  DenseArray a = MakeArray({5, 6, 7, 4}, /*integer_cells=*/true);
  std::vector<std::vector<DimRange>> cases = {
      {{0, 5}, {0, 6}, {0, 7}, {0, 4}},  // whole array
      {{1, 4}, {2, 5}, {0, 7}, {1, 3}},  // interior box
      {{2, 3}, {3, 4}, {5, 6}, {0, 4}},  // thin slab
      {{0, 5}, {0, 0}, {0, 7}, {0, 4}},  // empty range -> 0
  };
  for (const auto& ranges : cases) {
    auto serial = a.SumRange(ranges);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int t : {1, 2, 4, 8}) {
      auto parallel = exec::ParallelSumRange(a, ranges, Threads(t, 8));
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(*serial, *parallel) << t << " threads";
    }
  }
  // Validation parity: wrong arity and out-of-bounds fail in both.
  EXPECT_FALSE(exec::ParallelSumRange(a, {{0, 5}}, Threads(4)).ok());
  EXPECT_FALSE(
      exec::ParallelSumRange(a, {{0, 5}, {0, 6}, {0, 7}, {0, 9}}, Threads(4))
          .ok());
}

TEST(MolapEquivalence, SumRangeThreadInvariantOnInexactCells) {
  DenseArray a = MakeArray({6, 6, 6}, /*integer_cells=*/false);
  std::vector<DimRange> ranges = {{0, 6}, {1, 5}, {0, 6}};
  auto baseline = exec::ParallelSumRange(a, ranges, Threads(1, 4));
  ASSERT_TRUE(baseline.ok());
  for (int t : {2, 4, 8}) {
    auto other = exec::ParallelSumRange(a, ranges, Threads(t, 4));
    ASSERT_TRUE(other.ok());
    uint64_t bx, by;
    double dx = *baseline, dy = *other;
    std::memcpy(&bx, &dx, sizeof bx);
    std::memcpy(&by, &dy, sizeof by);
    EXPECT_EQ(bx, by) << t << " threads";
  }
}

TEST(MolapEquivalence, MarginalSumsMatchSerial) {
  // Each marginal entry is one slab walked in index order by exactly one
  // task, so even inexact cells reproduce the serial vector bit-for-bit.
  DenseArray a = MakeArray({7, 5, 9}, /*integer_cells=*/false);
  for (size_t dim = 0; dim < 3; ++dim) {
    auto serial = exec::MarginalSums(a, dim);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int t : {1, 2, 4, 8}) {
      auto parallel = exec::ParallelMarginalSums(a, dim, Threads(t, 2));
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ASSERT_EQ(serial->size(), parallel->size());
      for (size_t i = 0; i < serial->size(); ++i) {
        uint64_t bx, by;
        std::memcpy(&bx, &(*serial)[i], sizeof bx);
        std::memcpy(&by, &(*parallel)[i], sizeof by);
        EXPECT_EQ(bx, by) << "dim " << dim << " entry " << i;
      }
    }
  }
  EXPECT_FALSE(exec::ParallelMarginalSums(a, 3, Threads(4)).ok());
}

// ---------------------------------------------------------------------------
// Materialization: concurrent view building and greedy selection.

TEST(MaterializeEquivalence, MaterializeAllMatchesSerialOrder) {
  const auto& w = Workloads::Get();
  std::vector<std::string> dims = {"category", "city", "month"};
  std::vector<AggSpec> aggs = {{AggFn::kSum, "amount", ""},
                               {AggFn::kCount, "qty", ""}};
  auto serial =
      MaterializedCubeStore::Create(w.retail.flat, dims, aggs).ValueOrDie();
  auto parallel =
      MaterializedCubeStore::Create(w.retail.flat, dims, aggs).ValueOrDie();

  std::vector<uint32_t> masks;
  for (uint32_t m = 0; m < 8; ++m) masks.push_back(m);
  // Serial reference: (popcount desc, mask asc) — the documented order.
  for (uint32_t m : {7u, 3u, 5u, 6u, 1u, 2u, 4u, 0u})
    ASSERT_TRUE(serial.Materialize(m).ok());
  ASSERT_TRUE(parallel.MaterializeAll(masks, /*threads=*/4).ok());

  ASSERT_EQ(serial.materialized_masks(), parallel.materialized_masks());
  EXPECT_EQ(serial.materialized_rows(), parallel.materialized_rows());
  for (uint32_t m : masks) {
    auto a = serial.Query(m);
    auto b = parallel.Query(m);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectTablesIdentical(*a, *b, "view mask " + std::to_string(m));
  }
}

// ---------------------------------------------------------------------------
// Vectorized kernels (exec/vec_kernels.h): the radix group-by carries a
// STRONGER contract than the scalar-parallel path — its output is
// bit-identical to the SERIAL operators for EVERY measure (exact-sum or
// not) at every thread count, because the stable radix scatter replays each
// group's serial accumulation order and groups are emitted in global
// first-occurrence order. So every test below compares against serial
// directly, including the inexact stock close price that the scalar-parallel
// path only promises thread-count invariance for.

exec::ExecOptions VecThreads(int t, size_t morsel_rows = 512) {
  exec::ExecOptions o = Threads(t, morsel_rows);
  o.vectorized = true;
  o.vec_fanout_rows = 0;  // force the parallel phases even at test sizes
  return o;
}

TEST(VectorizedEquivalence, GroupByMatchesSerialOnEveryWorkload) {
  const auto& w = Workloads::Get();
  struct Case {
    const Table* table;
    std::vector<std::string> group_cols;
    std::vector<AggSpec> aggs;
  } cases[] = {
      {&w.retail.flat,
       {"category", "city"},
       {{AggFn::kSum, "amount", ""},
        {AggFn::kCount, "qty", ""},
        {AggFn::kMin, "amount", ""},
        {AggFn::kMax, "amount", ""}}},
      {&w.census.data(),
       {"race", "sex"},
       {{AggFn::kSum, "population", ""}, {AggFn::kAvg, "population", ""}}},
      {&w.hmo.data(),
       {"hospital"},
       {{AggFn::kSum, "cost", ""}, {AggFn::kSum, "visits", ""}}},
      // Inexact measure on purpose: close is a non-integer double, and the
      // vectorized path must STILL match serial bit-for-bit.
      {&w.stocks.data(),
       {"stock"},
       {{AggFn::kSum, "volume", ""},
        {AggFn::kAvg, "close", ""},
        {AggFn::kCountAll, "", ""}}},
  };
  for (const auto& c : cases) {
    auto serial = GroupBy(*c.table, c.group_cols, c.aggs);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int t : {1, 2, 4, 8}) {
      auto vec = exec::ParallelGroupBy(*c.table, c.group_cols, c.aggs,
                                       VecThreads(t));
      ASSERT_TRUE(vec.ok()) << vec.status().ToString();
      ExpectTablesIdentical(*serial, *vec,
                            c.table->name() + " vec@" + std::to_string(t));
    }
  }
}

TEST(VectorizedEquivalence, MatchesSerialOnInexactMeasureAtSmallMorsels) {
  // Small morsels force many partial dictionaries and a multi-morsel
  // scatter; the per-group accumulation order must still be the serial one.
  const auto& w = Workloads::Get();
  std::vector<AggSpec> aggs = {{AggFn::kAvg, "close", ""},
                               {AggFn::kSum, "close", ""},
                               {AggFn::kVariance, "close", ""}};
  auto serial = GroupBy(w.stocks.data(), {"stock"}, aggs);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int t : {1, 2, 4, 8}) {
    auto vec = exec::ParallelGroupBy(w.stocks.data(), {"stock"}, aggs,
                                     VecThreads(t, /*morsel_rows=*/64));
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    ExpectTablesIdentical(*serial, *vec, "close vec@" + std::to_string(t));
  }
}

TEST(VectorizedEquivalence, CubeAndRollupMatchSerial) {
  // CUBE/ROLLUP exercise RollupGroupedStates over the vectorized base map:
  // lattice roll-ups fold groups in map iteration order, so this only holds
  // because the vectorized map replays the serial insertion order.
  const auto& w = Workloads::Get();
  std::vector<AggSpec> aggs = {{AggFn::kSum, "amount", ""},
                               {AggFn::kCount, "qty", ""}};
  auto cube_serial = CubeBy(w.retail.flat, {"category", "city", "month"}, aggs);
  ASSERT_TRUE(cube_serial.ok());
  std::vector<AggSpec> census_aggs = {{AggFn::kSum, "population", ""}};
  auto rollup_serial =
      RollupBy(w.census.data(), {"race", "sex", "age_group"}, census_aggs);
  ASSERT_TRUE(rollup_serial.ok());
  for (int t : {1, 2, 4, 8}) {
    auto cube = exec::ParallelCubeBy(
        w.retail.flat, {"category", "city", "month"}, aggs, VecThreads(t));
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    ExpectTablesIdentical(*cube_serial, *cube,
                          "vec cube@" + std::to_string(t));
    auto rollup = exec::ParallelRollupBy(
        w.census.data(), {"race", "sex", "age_group"}, census_aggs,
        VecThreads(t));
    ASSERT_TRUE(rollup.ok()) << rollup.status().ToString();
    ExpectTablesIdentical(*rollup_serial, *rollup,
                          "vec rollup@" + std::to_string(t));
  }
}

TEST(VectorizedEquivalence, EmptyByAndEmptyInput) {
  // Empty BY list = one global group over the measure slabs (the block-sum
  // fast path); an empty input yields an empty result in both paths.
  const auto& w = Workloads::Get();
  std::vector<AggSpec> aggs = {{AggFn::kSum, "amount", ""},
                               {AggFn::kMin, "amount", ""},
                               {AggFn::kMax, "amount", ""},
                               {AggFn::kAvg, "amount", ""},
                               {AggFn::kCountAll, "", ""}};
  auto serial = GroupBy(w.retail.flat, {}, aggs);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  Table empty("empty", w.retail.flat.schema());
  auto empty_serial = GroupBy(empty, {"city"}, aggs);
  ASSERT_TRUE(empty_serial.ok());
  for (int t : {1, 2, 4, 8}) {
    auto vec = exec::ParallelGroupBy(w.retail.flat, {}, aggs, VecThreads(t));
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    ExpectTablesIdentical(*serial, *vec, "empty-by vec@" + std::to_string(t));
    auto empty_vec =
        exec::ParallelGroupBy(empty, {"city"}, aggs, VecThreads(t));
    ASSERT_TRUE(empty_vec.ok()) << empty_vec.status().ToString();
    ExpectTablesIdentical(*empty_serial, *empty_vec,
                          "empty-input vec@" + std::to_string(t));
  }
}

TEST(VectorizedEquivalence, SingleKeySkew) {
  // Every row carries the same key, so one radix partition receives the
  // whole table while the other 63 stay empty — the degenerate load-balance
  // case. Inexact measure values make accumulation order observable.
  Schema schema;
  schema.AddColumn("k", ValueType::kString);
  schema.AddColumn("v", ValueType::kDouble);
  Table skew("skew", schema);
  for (int i = 0; i < 5000; ++i)
    skew.AppendRowUnchecked({Value("only"), Value(0.1 * double(i % 997))});
  std::vector<AggSpec> aggs = {{AggFn::kSum, "v", ""},
                               {AggFn::kAvg, "v", ""},
                               {AggFn::kMin, "v", ""},
                               {AggFn::kMax, "v", ""}};
  auto serial = GroupBy(skew, {"k"}, aggs);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int t : {1, 2, 4, 8}) {
    auto vec = exec::ParallelGroupBy(skew, {"k"}, aggs, VecThreads(t, 256));
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    ExpectTablesIdentical(*serial, *vec, "skew vec@" + std::to_string(t));
  }
}

TEST(VectorizedEquivalence, QueryPathMatchesSerial) {
  // ExecuteQueryParallel with vectorized=true, across all four workloads'
  // query batteries (the same queries the scalar-parallel tests run).
  const auto& w = Workloads::Get();
  struct Battery {
    const StatisticalObject* obj;
    std::vector<const char*> queries;
  } batteries[] = {
      {&w.retail.object,
       {"SELECT sum(amount) BY city",
        "SELECT sum(qty), avg(amount) BY category",
        "SELECT sum(amount) BY month WHERE city = 'city1'",
        "SELECT sum(amount) BY CUBE(city, month)",
        "SELECT count() WHERE price_range = 'premium'",
        "SELECT sum(amount), sum(qty) BY CUBE(category, city, year)"}},
      {&w.census,
       {"SELECT sum(population) BY race",
        "SELECT sum(population) BY CUBE(race, sex)",
        "SELECT sum(population) BY age_group WHERE sex = 'M'"}},
      {&w.hmo,
       {"SELECT sum(cost), sum(visits) BY hospital",
        "SELECT sum(cost) BY CUBE(hospital, month)"}},
      {&w.stocks,
       {"SELECT sum(volume) BY stock",
        "SELECT avg(close) BY stock",
        "SELECT sum(volume) BY CUBE(stock, day)"}},
  };
  for (const auto& b : batteries) {
    for (const char* q : b.queries) {
      auto parsed = ParseQuery(q);
      ASSERT_TRUE(parsed.ok()) << q;
      auto serial = ExecuteQuery(*b.obj, *parsed);
      ASSERT_TRUE(serial.ok()) << q << ": " << serial.status().ToString();
      for (int t : {1, 2, 4, 8}) {
        auto vec = ExecuteQueryParallel(*b.obj, *parsed, t, /*stop=*/nullptr,
                                        /*vectorized=*/true);
        ASSERT_TRUE(vec.ok()) << q << ": " << vec.status().ToString();
        ExpectTablesIdentical(*serial, *vec,
                              std::string(q) + " vec@" + std::to_string(t));
      }
    }
  }
}

TEST(VectorizedEquivalence, BackendsMatchScalarSerial) {
  // All three cube backends, vectorized on, 1/2/4/8 workers, against the
  // scalar serial execution of the same backend.
  const auto& w = Workloads::Get();
  auto molap = MakeMolapBackend(w.retail.object, "amount").ValueOrDie();
  auto rolap = MakeRolapBackend(w.retail.object, "amount").ValueOrDie();
  auto indexed = MakeRolapBackend(w.retail.object, "amount",
                                  {.build_bitmap_indexes = true})
                     .ValueOrDie();
  std::vector<CubeQuery> queries;
  {
    CubeQuery q;
    q.group_dims = {"store"};
    queries.push_back(q);
    q.group_dims = {"product", "store"};
    q.filters = {{"day", Value("1996-1-3")}};
    queries.push_back(q);
  }
  for (CubeBackend* backend : {molap.get(), rolap.get(), indexed.get()}) {
    for (CubeQuery q : queries) {
      q.threads = 1;
      q.vectorized = false;
      auto serial = backend->GroupBySum(q);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      q.vectorized = true;
      for (int t : {1, 2, 4, 8}) {
        q.threads = t;
        auto vec = backend->GroupBySum(q);
        ASSERT_TRUE(vec.ok()) << vec.status().ToString();
        ExpectTablesIdentical(*serial, *vec,
                              backend->name() + " vec@" + std::to_string(t));
      }
    }
  }
}

TEST(MaterializeEquivalence, GreedySelectMatchesSerial) {
  // Estimated lattice over 5 dims (32 views) with deliberate cardinality
  // ties, so the lowest-index argmin tie-break is actually exercised.
  Lattice lattice = Lattice::FromCardinalities(
      {"a", "b", "c", "d", "e"}, {20, 20, 50, 5, 5}, 100000);
  for (size_t k : {size_t(1), size_t(3), size_t(6)}) {
    ViewSelection serial = GreedySelect(lattice, k);
    for (int t : {1, 2, 4, 8}) {
      ViewSelection parallel = GreedySelectParallel(lattice, k, t);
      EXPECT_EQ(serial.views, parallel.views) << "k=" << k << " t=" << t;
      EXPECT_EQ(serial.benefit, parallel.benefit);
      EXPECT_EQ(serial.total_cost, parallel.total_cost);
      EXPECT_EQ(serial.space_rows, parallel.space_rows);
    }
  }
}

}  // namespace
}  // namespace statcube
