// Tests for the observability layer: metrics registry (histogram bucket
// boundaries, snapshot export), span-tree nesting, disabled-mode no-ops,
// and the MOLAP/ROLAP profile equivalence (same answers, different blocks —
// the §6.6 comparison made measurable).

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "json_checker.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_profile.h"
#include "statcube/obs/trace.h"
#include "statcube/olap/backend.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

// --------------------------------------------------------------- metrics

TEST(MetricsTest, CounterAndGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);

  obs::Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  obs::Histogram h({10, 100, 1000});
  h.Observe(5);     // <= 10        -> bucket 0
  h.Observe(10);    // == bound     -> bucket 0 (le semantics)
  h.Observe(11);    // <= 100       -> bucket 1
  h.Observe(100);   // == bound     -> bucket 1
  h.Observe(999);   // <= 1000      -> bucket 2
  h.Observe(1001);  // above last   -> overflow
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // overflow
  EXPECT_EQ(h.TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 5 + 10 + 11 + 100 + 999 + 1001);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.BucketCount(3), 0u);
}

TEST(MetricsTest, TextSnapshotHistogramBucketsAreCumulative) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  obs::Histogram& h = reg.GetHistogram("statcube.test.cumhist", {1, 10, 100});
  h.Observe(0.5);
  h.Observe(5);
  h.Observe(50);
  h.Observe(500);  // overflow
  // Per-bucket counts are 1,1,1,1 — the text snapshot must accumulate.
  std::string text = reg.TextSnapshot();
  EXPECT_NE(text.find("statcube.test.cumhist.le_1 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("statcube.test.cumhist.le_10 2"), std::string::npos);
  EXPECT_NE(text.find("statcube.test.cumhist.le_100 3"), std::string::npos);
  // le_inf equals count — the cumulative invariant.
  EXPECT_NE(text.find("statcube.test.cumhist.le_inf 4"), std::string::npos);
  EXPECT_NE(text.find("statcube.test.cumhist.count 4"), std::string::npos);
  // JsonSnapshot stays per-bucket (documented in metrics.h).
  std::string json = reg.JsonSnapshot();
  EXPECT_NE(json.find("{\"le\":1,\"count\":1}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\":10,\"count\":1}"), std::string::npos);
  reg.Reset();
}

TEST(MetricsTest, PercentileInterpolatesWithinBuckets) {
  obs::Histogram h({10, 100, 1000});
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);  // empty
  for (int i = 0; i < 90; ++i) h.Observe(5);     // bucket (0,10]
  for (int i = 0; i < 10; ++i) h.Observe(500);   // bucket (100,1000]
  // p50 falls among the first 90 observations: inside (0, 10].
  double p50 = h.Percentile(0.50);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 10.0);
  // p95 falls among the last 10: inside (100, 1000].
  double p95 = h.Percentile(0.95);
  EXPECT_GT(p95, 100.0);
  EXPECT_LE(p95, 1000.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.99));
  // Overflow observations clamp to the last finite bound.
  obs::Histogram over({10});
  over.Observe(1e9);
  EXPECT_DOUBLE_EQ(over.Percentile(0.99), 10.0);
}

TEST(MetricsTest, PercentileEdgeCases) {
  // Empty histogram: every quantile is 0, including the extremes.
  obs::Histogram empty({10, 100});
  EXPECT_DOUBLE_EQ(empty.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(1.0), 0.0);

  // Single sample: every quantile lands in the one occupied bucket and
  // interpolates to its upper bound (rank 1 of 1).
  obs::Histogram one({10, 100});
  one.Observe(7);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_GT(one.Percentile(q), 0.0) << "q=" << q;
    EXPECT_LE(one.Percentile(q), 10.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(one.Percentile(1.0), 10.0);

  // Out-of-range q clamps instead of reading garbage ranks.
  EXPECT_DOUBLE_EQ(one.Percentile(-0.5), one.Percentile(0.0));
  EXPECT_DOUBLE_EQ(one.Percentile(2.0), one.Percentile(1.0));

  // Every observation in the +Inf overflow bucket: no finite bucket holds
  // the rank, so the result clamps to the last finite bound — the exporter's
  // p50/p95/p99 gauges must not fabricate values beyond the bucket layout.
  obs::Histogram over({10, 100});
  for (int i = 0; i < 5; ++i) over.Observe(1e12);
  EXPECT_DOUBLE_EQ(over.Percentile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(over.Percentile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(over.Percentile(1.0), 100.0);
}

TEST(MetricsTest, HistogramBoundsAreSorted) {
  obs::Histogram h({1000, 10, 100});
  EXPECT_EQ(h.bounds(), (std::vector<double>{10, 100, 1000}));
}

TEST(MetricsTest, RegistryReturnsStableMetrics) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& a = reg.GetCounter("statcube.test.stable");
  obs::Counter& b = reg.GetCounter("statcube.test.stable");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.Value(), 7u);
}

TEST(MetricsTest, SnapshotsRoundTrip) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.GetCounter("statcube.test.counter").Add(3);
  reg.GetGauge("statcube.test.gauge").Set(2.5);
  reg.GetHistogram("statcube.test.hist", {1, 10}).Observe(4);

  std::string text = reg.TextSnapshot();
  EXPECT_NE(text.find("statcube.test.counter 3"), std::string::npos) << text;
  EXPECT_NE(text.find("statcube.test.gauge 2.5"), std::string::npos) << text;
  EXPECT_NE(text.find("statcube.test.hist.count 1"), std::string::npos);
  EXPECT_NE(text.find("statcube.test.hist.le_10 1"), std::string::npos);

  std::string json = reg.JsonSnapshot();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"statcube.test.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"statcube.test.hist\""), std::string::npos);

  reg.Reset();
  EXPECT_EQ(reg.GetCounter("statcube.test.counter").Value(), 0u);
  EXPECT_EQ(reg.GetHistogram("statcube.test.hist").TotalCount(), 0u);
}

// ----------------------------------------------------------------- trace

TEST(TraceTest, SpanTreeNestingAndOrdering) {
  obs::EnabledScope on(true);
  obs::TraceScope scope;
  {
    obs::Span a("a");
    {
      obs::Span b("b");
      { obs::Span c("c"); }
    }
    { obs::Span d("d"); }
  }
  { obs::Span e("e"); }

  const auto& spans = scope.trace().spans();
  ASSERT_EQ(spans.size(), 5u);
  // Open order: a, b, c, d, e.
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[1].name, "b");
  EXPECT_EQ(spans[2].name, "c");
  EXPECT_EQ(spans[3].name, "d");
  EXPECT_EQ(spans[4].name, "e");
  // Parent/depth reconstruct the tree.
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].parent, 1);
  EXPECT_EQ(spans[3].parent, 0);
  EXPECT_EQ(spans[4].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[4].depth, 0);
  // All closed; children start no earlier than parents.
  for (const auto& s : spans) {
    EXPECT_FALSE(s.open) << s.name;
    if (s.parent >= 0) {
      EXPECT_GE(s.start_ns, spans[size_t(s.parent)].start_ns);
    }
  }
  // Renderings mention every span.
  std::string tree = scope.trace().TreeString();
  std::string chrome = scope.trace().ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(chrome).Valid()) << chrome;
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    EXPECT_NE(tree.find(name), std::string::npos);
    EXPECT_NE(chrome.find(name), std::string::npos);
  }
}

TEST(TraceTest, DisabledModeRecordsNothing) {
  obs::EnabledScope off(false);
  obs::TraceScope scope;
  {
    obs::Span a("a");
    obs::Span b("b");
  }
  EXPECT_TRUE(scope.trace().spans().empty());
  // Recorders are no-ops too: counters untouched.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  uint64_t before = reg.GetCounter("statcube.relational.select.calls").Value();
  obs::RecordOperator("select", 100, 50);
  obs::RecordViewStoreQuery(1, true, -1, 10);
  obs::RecordPrivacy(true, true);
  EXPECT_EQ(reg.GetCounter("statcube.relational.select.calls").Value(),
            before);
}

TEST(TraceTest, SpanWithoutTraceScopeIsSafe) {
  obs::EnabledScope on(true);
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
  obs::Span s("orphan");  // must not crash or leak
}

// --------------------------------------------------------------- profile

TEST(ProfileTest, ProfileScopeCollectsOperatorsAndRootSpan) {
  obs::EnabledScope on(true);
  obs::ProfileScope scope;
  { obs::Span s("phase1"); }
  obs::RecordOperator("select", 100, 40);
  obs::RecordBackend("molap", 12, 48000);
  obs::QueryProfile p = scope.Take();

  ASSERT_GE(p.trace.spans().size(), 2u);  // "query" root + phase1
  EXPECT_EQ(p.trace.spans()[0].name, "query");
  EXPECT_EQ(p.trace.spans()[1].parent, 0);
  ASSERT_EQ(p.operators.size(), 1u);
  EXPECT_EQ(p.operators[0].op, "select");
  EXPECT_EQ(p.operators[0].rows_in, 100u);
  EXPECT_EQ(p.operators[0].rows_out, 40u);
  EXPECT_EQ(p.backend, "molap");
  EXPECT_EQ(p.blocks.blocks_read(), 12u);
  EXPECT_EQ(p.blocks.bytes_read(), 48000u);
  EXPECT_TRUE(JsonChecker(p.ToJson()).Valid()) << p.ToJson();
  EXPECT_NE(p.ToString().find("blocks_read=12"), std::string::npos);
}

TEST(ProfileTest, BlockCounterMergeCombinesStores) {
  BlockCounter a(4096), b(512);
  a.ChargeBytes(8192);   // 2 blocks
  b.ChargeBlocks(3);     // 3 blocks, 1536 bytes
  a.Merge(b);
  EXPECT_EQ(a.blocks_read(), 5u);
  EXPECT_EQ(a.bytes_read(), 8192u + 1536u);
  // Zero-byte charge charges nothing.
  BlockCounter c;
  c.ChargeBytes(0);
  EXPECT_EQ(c.blocks_read(), 0u);
  EXPECT_EQ(c.bytes_read(), 0u);
}

// ------------------------------------------------- profiled query e2e

class ProfiledQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RetailOptions opt;
    opt.num_products = 10;
    opt.num_stores = 6;
    opt.num_cities = 3;
    opt.num_days = 10;
    opt.num_rows = 2000;
    data_ = std::make_unique<RetailData>(*MakeRetailWorkload(opt));
  }
  std::unique_ptr<RetailData> data_;
};

TEST_F(ProfiledQueryTest, RelationalProfileHasPhasesAndOperators) {
  auto r = QueryProfiled(data_->object,
                         "SELECT sum(amount) BY city WHERE product = 'prod1'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::QueryProfile& p = r->profile;
  EXPECT_EQ(p.backend, "relational");
  EXPECT_GE(p.NumPhases(), 4u) << p.ToString();
  // parse, plan, filter, aggregate, render all present in the tree.
  std::string tree = p.trace.TreeString();
  for (const char* phase :
       {"query", "parse", "plan", "filter", "aggregate", "render"})
    EXPECT_NE(tree.find(phase), std::string::npos) << tree;
  EXPECT_FALSE(p.operators.empty());
  EXPECT_EQ(p.result_rows, r->table.num_rows());
  EXPECT_FALSE(r->rendered.empty());
}

TEST_F(ProfiledQueryTest, ExplainProfilePrefixParses) {
  auto q = ParseQuery("EXPLAIN PROFILE SELECT sum(amount) BY city");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->explain_profile);
  ASSERT_EQ(q->by.size(), 1u);
  EXPECT_EQ(q->by[0], "city");
  EXPECT_FALSE(ParseQuery("EXPLAIN SELECT sum(amount)").ok());
  auto plain = ParseQuery("SELECT sum(amount)");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain_profile);
}

TEST_F(ProfiledQueryTest, BackendEnginesAnswerWithBackendSpans) {
  for (QueryEngine engine :
       {QueryEngine::kMolap, QueryEngine::kRolap, QueryEngine::kRolapBitmap}) {
    QueryOptions opt;
    opt.engine = engine;
    auto r = QueryProfiled(data_->object, "SELECT sum(amount) BY store", opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->profile.backend, QueryEngineName(engine));
    EXPECT_GT(r->profile.blocks.blocks_read(), 0u);
    EXPECT_GE(r->profile.NumPhases(), 4u);
    std::string tree = r->profile.trace.TreeString();
    EXPECT_NE(tree.find("backend.build"), std::string::npos) << tree;
    EXPECT_NE(tree.find("backend.groupby"), std::string::npos) << tree;
  }
}

TEST_F(ProfiledQueryTest, UnexpressibleQueryFallsBackToRelational) {
  QueryOptions opt;
  opt.engine = QueryEngine::kMolap;
  // AVG and hierarchy rollup are not backend-expressible.
  auto r = QueryProfiled(data_->object, "SELECT avg(amount) BY city", opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->profile.backend, "relational");
}

// The §6.6 equivalence, observed: MOLAP and ROLAP report identical result
// rows for the same query while charging different logical block counts.
TEST_F(ProfiledQueryTest, MolapAndRolapProfilesAgreeOnRowsNotBlocks) {
  obs::EnabledScope on(true);
  auto molap = MakeMolapBackend(data_->object, "amount").ValueOrDie();
  auto rolap = MakeRolapBackend(data_->object, "amount").ValueOrDie();

  CubeQuery q;
  q.group_dims = {"store"};

  obs::QueryProfile pm, pr;
  Table tm, tr;
  {
    obs::ProfileScope scope;
    tm = molap->GroupBySum(q).ValueOrDie();
    pm = scope.Take();
    pm.result_rows = tm.num_rows();
  }
  {
    obs::ProfileScope scope;
    tr = rolap->GroupBySum(q).ValueOrDie();
    pr = scope.Take();
    pr.result_rows = tr.num_rows();
  }

  EXPECT_EQ(pm.backend, "molap");
  EXPECT_EQ(pr.backend, "rolap");
  // Identical result rows (every store occurs in the generated data).
  ASSERT_EQ(pm.result_rows, pr.result_rows);
  ASSERT_EQ(tm.num_rows(), tr.num_rows());
  for (size_t i = 0; i < tm.num_rows(); ++i) {
    EXPECT_EQ(tm.at(i, 0), tr.at(i, 0));
    EXPECT_NEAR(tm.at(i, 1).AsDouble(), tr.at(i, 1).AsDouble(), 1e-6);
  }
  // Different physical work.
  EXPECT_GT(pm.blocks.blocks_read(), 0u);
  EXPECT_GT(pr.blocks.blocks_read(), 0u);
  EXPECT_NE(pm.blocks.blocks_read(), pr.blocks.blocks_read());
}

}  // namespace
}  // namespace statcube
