// Unit tests for the query lifecycle control plane: CancelContext semantics
// (token/deadline precedence, monotonicity), StopStatus mapping, the
// thread-local CancelScope, the in-flight QueryRegistry (register / snapshot
// / cancel / JSON / gauge), the watchdog sweep (soft log, hard cancel,
// once-only reporting), and QueryProfiled end-to-end outcomes: pre-cancelled
// tokens, expired deadlines, and the profile's `outcome` field as retained
// by the flight recorder.

#include "statcube/obs/query_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.h"
#include "statcube/common/cancellation.h"
#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/log.h"
#include "statcube/obs/metrics.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

const StatisticalObject& Retail() {
  static StatisticalObject* obj = [] {
    RetailOptions opt;
    opt.num_products = 6;
    opt.num_stores = 4;
    opt.num_cities = 2;
    opt.num_days = 5;
    opt.num_rows = 2000;
    return new StatisticalObject(
        MakeRetailWorkload(opt).ValueOrDie().object);
  }();
  return *obj;
}

// ------------------------------------------------------------ CancelContext

TEST(CancelContextTest, InactiveWithoutTokenOrDeadline) {
  CancelContext ctx;
  EXPECT_FALSE(ctx.active());
  EXPECT_EQ(ctx.Check(), StopReason::kNone);
}

TEST(CancelContextTest, TokenCancelIsSharedAndMonotonic) {
  CancellationToken token;
  CancellationToken copy = token;  // copies share the flag
  CancelContext ctx;
  ctx.token = &token;
  EXPECT_TRUE(ctx.active());
  EXPECT_EQ(ctx.Check(), StopReason::kNone);
  copy.Cancel();
  EXPECT_EQ(ctx.Check(), StopReason::kCancelled);
  // Monotonic: once stopped, every later Check agrees.
  EXPECT_EQ(ctx.Check(), StopReason::kCancelled);
}

TEST(CancelContextTest, ExpiredDeadlineReportsDeadlineExceeded) {
  CancelContext ctx;
  ctx.deadline_us = SteadyNowUs() - 1;  // already in the past
  EXPECT_TRUE(ctx.active());
  EXPECT_EQ(ctx.Check(), StopReason::kDeadlineExceeded);
}

TEST(CancelContextTest, FutureDeadlineDoesNotFire) {
  CancelContext ctx;
  ctx.deadline_us = SteadyNowUs() + 60ull * 1000 * 1000;  // one minute out
  EXPECT_EQ(ctx.Check(), StopReason::kNone);
}

TEST(CancelContextTest, CancellationWinsOverExpiredDeadline) {
  CancellationToken token;
  token.Cancel();
  CancelContext ctx;
  ctx.token = &token;
  ctx.deadline_us = SteadyNowUs() - 1;
  EXPECT_EQ(ctx.Check(), StopReason::kCancelled);
}

TEST(CancelContextTest, StopStatusMapsReasonToCode) {
  Status c = StopStatus(StopReason::kCancelled, "groupby");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_NE(c.ToString().find("groupby"), std::string::npos);
  Status d = StopStatus(StopReason::kDeadlineExceeded, "cube");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(d.ToString().find("cube"), std::string::npos);
}

TEST(CancelScopeTest, InstallsAndRestoresThreadLocalContext) {
  EXPECT_EQ(CurrentCancelContext(), nullptr);
  CancelContext outer;
  {
    CancelScope install(&outer);
    EXPECT_EQ(CurrentCancelContext(), &outer);
    CancelContext inner;
    {
      CancelScope nested(&inner);
      EXPECT_EQ(CurrentCancelContext(), &inner);
    }
    EXPECT_EQ(CurrentCancelContext(), &outer);
    {
      CancelScope noop(nullptr);  // nullptr keeps the previous context
      EXPECT_EQ(CurrentCancelContext(), &outer);
    }
  }
  EXPECT_EQ(CurrentCancelContext(), nullptr);
}

TEST(CancelScopeTest, ContextIsPerThread) {
  CancelContext ctx;
  CancelScope install(&ctx);
  const CancelContext* seen = &ctx;
  std::thread other([&seen] { seen = CurrentCancelContext(); });
  other.join();
  EXPECT_EQ(seen, nullptr);  // the other thread never installed one
  EXPECT_EQ(CurrentCancelContext(), &ctx);
}

// ------------------------------------------------------------ QueryRegistry

obs::ActiveQueryInfo MakeInfo(const std::string& text,
                              const CancellationToken& token) {
  obs::ActiveQueryInfo info;
  info.query = text;
  info.engine = "relational";
  info.cache_mode = "off";
  info.threads = 2;
  info.token = token;
  return info;
}

TEST(QueryRegistryTest, RegisterSnapshotUnregister) {
  obs::QueryRegistry reg;
  CancellationToken token;
  uint64_t id = reg.Register(MakeInfo("SELECT sum(amount) BY store", token));
  EXPECT_GE(id, 1u);
  EXPECT_EQ(reg.ActiveCount(), 1u);

  std::vector<obs::ActiveQuerySnapshot> snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].id, id);
  EXPECT_EQ(snaps[0].query, "SELECT sum(amount) BY store");
  EXPECT_EQ(snaps[0].engine, "relational");
  EXPECT_EQ(snaps[0].cache_mode, "off");
  EXPECT_EQ(snaps[0].threads, 2);
  EXPECT_FALSE(snaps[0].cancelled);

  reg.Unregister(id);
  EXPECT_EQ(reg.ActiveCount(), 0u);
  reg.Unregister(id);  // idempotent on unknown ids
  EXPECT_EQ(reg.ActiveCount(), 0u);
}

TEST(QueryRegistryTest, IdsAreMonotonic) {
  obs::QueryRegistry reg;
  CancellationToken token;
  uint64_t a = reg.Register(MakeInfo("q1", token));
  uint64_t b = reg.Register(MakeInfo("q2", token));
  EXPECT_LT(a, b);
  reg.Unregister(a);
  uint64_t c = reg.Register(MakeInfo("q3", token));
  EXPECT_LT(b, c);  // ids are never reused
  reg.Unregister(b);
  reg.Unregister(c);
}

TEST(QueryRegistryTest, CancelFlipsTheSharedToken) {
  obs::QueryRegistry reg;
  CancellationToken token;
  uint64_t id = reg.Register(MakeInfo("q", token));
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(reg.Cancel(id));
  EXPECT_TRUE(token.cancelled());  // the caller's copy sees it
  std::vector<obs::ActiveQuerySnapshot> snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_TRUE(snaps[0].cancelled);
  reg.Unregister(id);
  EXPECT_FALSE(reg.Cancel(id));  // gone: cancel is a miss
}

TEST(QueryRegistryTest, ToJsonIsWellFormedAndListsQueries) {
  obs::QueryRegistry reg;
  CancellationToken token;
  uint64_t id = reg.Register(MakeInfo("SELECT sum(\"amount\") BY store",
                                      token));
  std::string json = reg.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"active\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":" + std::to_string(id)), std::string::npos);
  EXPECT_NE(json.find("\\\"amount\\\""), std::string::npos)
      << "query text must be JSON-escaped: " << json;
  reg.Unregister(id);
  std::string empty = reg.ToJson();
  EXPECT_TRUE(JsonChecker(empty).Valid()) << empty;
  EXPECT_NE(empty.find("\"active\":0"), std::string::npos);
  EXPECT_NE(empty.find("\"queries\":[]"), std::string::npos);
}

TEST(QueryRegistryTest, GlobalTracksActiveGauge) {
  obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("statcube.query.active");
  double before = gauge.Value();
  CancellationToken token;
  {
    obs::ActiveQueryScope scope(MakeInfo("gauge probe", token));
    EXPECT_GE(scope.id(), 1u);
    EXPECT_EQ(gauge.Value(), before + 1);
  }
  EXPECT_EQ(gauge.Value(), before);
}

TEST(QueryRegistryTest, SnapshotReadsLiveResources) {
  obs::QueryRegistry reg;
  obs::ResourceAccumulator acc;
  acc.ChargeCpu(0, 123);
  acc.ChargeBytes(456);
  acc.CountMorsels(7);
  CancellationToken token;
  obs::ActiveQueryInfo info = MakeInfo("q", token);
  info.resources = &acc;
  uint64_t id = reg.Register(std::move(info));
  std::vector<obs::ActiveQuerySnapshot> snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].resources.cpu_us, 123u);
  EXPECT_EQ(snaps[0].resources.bytes_touched, 456u);
  EXPECT_EQ(snaps[0].resources.morsels, 7u);
  acc.CountMorsels(1);  // mid-flight progress is visible on the next snapshot
  EXPECT_EQ(reg.Snapshot()[0].resources.morsels, 8u);
  reg.Unregister(id);
}

// --------------------------------------------------------------- watchdog

// SweepStuck thresholds are wall microseconds since registration; spin past
// one clock tick so a 1 µs threshold fires deterministically (Register and
// the sweep can otherwise land in the same microsecond).
void SpinPastOneMicrosecond() {
  uint64_t start = SteadyNowUs();
  while (SteadyNowUs() <= start) {
  }
}

TEST(WatchdogSweepTest, SoftThresholdReportsEachQueryOnce) {
  obs::QueryRegistry reg;
  CancellationToken token;
  uint64_t id = reg.Register(MakeInfo("slow", token));
  SpinPastOneMicrosecond();
  // stuck_after_us = 1: everything in flight is already past it.
  std::vector<obs::StuckQuery> first = reg.SweepStuck(1, 0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].snapshot.id, id);
  EXPECT_FALSE(first[0].auto_cancelled);
  EXPECT_FALSE(token.cancelled());  // soft threshold only logs
  // The same query is not reported again by later sweeps.
  EXPECT_TRUE(reg.SweepStuck(1, 0).empty());
  reg.Unregister(id);
}

TEST(WatchdogSweepTest, HardLimitCancelsOnce) {
  obs::QueryRegistry reg;
  CancellationToken token;
  uint64_t id = reg.Register(MakeInfo("runaway", token));
  SpinPastOneMicrosecond();
  std::vector<obs::StuckQuery> swept = reg.SweepStuck(1, 1);
  // Crossed both thresholds in one sweep: logged once, cancelled once.
  ASSERT_EQ(swept.size(), 2u);
  EXPECT_FALSE(swept[0].auto_cancelled);
  EXPECT_TRUE(swept[1].auto_cancelled);
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(reg.SweepStuck(1, 1).empty());
  reg.Unregister(id);
}

TEST(WatchdogSweepTest, ZeroThresholdsDisable) {
  obs::QueryRegistry reg;
  CancellationToken token;
  uint64_t id = reg.Register(MakeInfo("fine", token));
  EXPECT_TRUE(reg.SweepStuck(0, 0).empty());
  EXPECT_FALSE(token.cancelled());
  reg.Unregister(id);
}

TEST(WatchdogTest, SweepOnceLogsStructuredStuckQueryEvent) {
  // Route the structured log into a buffer and relax the rate limit so the
  // event cannot be dropped by earlier tests' emissions.
  std::vector<std::string> lines;
  obs::LogSink prev = obs::SetLogSink(
      [&lines](const std::string& line) { lines.push_back(line); });
  obs::SetLogRateLimit(0, 0);

  CancellationToken token;
  obs::ActiveQueryScope scope(MakeInfo("stuck probe", token));
  SpinPastOneMicrosecond();
  obs::QueryWatchdogOptions opt;
  opt.stuck_after_us = 1;   // everything qualifies immediately
  opt.max_query_us = 0;     // log only
  obs::QueryWatchdog dog(opt);
  size_t actioned = dog.SweepOnce();
  obs::SetLogSink(prev ? prev : obs::LogSink(nullptr));

  EXPECT_GE(actioned, 1u);
  EXPECT_EQ(dog.sweeps(), 1u);
  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("\"stuck_query\"") == std::string::npos) continue;
    found = true;
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    EXPECT_NE(line.find("\"query\":\"stuck probe\""), std::string::npos);
    EXPECT_NE(line.find("\"action\":\"logged\""), std::string::npos);
    EXPECT_NE(line.find("\"elapsed_us\""), std::string::npos);
  }
  EXPECT_TRUE(found) << "no stuck_query line captured";
}

TEST(WatchdogTest, StartStopIdempotentAndSweepsAdvance) {
  obs::QueryWatchdogOptions opt;
  opt.interval_ms = 10;  // clamp floor; keeps the test fast
  obs::QueryWatchdog dog(opt);
  EXPECT_EQ(dog.interval_ms(), 10);
  dog.Start();
  dog.Start();  // second Start is a no-op
  // The loop sweeps immediately on entry; spin until that first sweep lands.
  while (dog.sweeps() == 0) std::this_thread::yield();
  dog.Stop();
  dog.Stop();  // second Stop is a no-op
  uint64_t after = dog.sweeps();
  EXPECT_GE(after, 1u);
}

// ------------------------------------------------- QueryProfiled outcomes

TEST(QueryLifecycleTest, PreCancelledTokenStopsAtAdmission) {
  CancellationToken token;
  token.Cancel();
  QueryOptions opt;
  opt.cancel = &token;
  opt.record = false;
  auto r = QueryProfiled(Retail(), "SELECT sum(amount) BY store", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(QueryLifecycleTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  QueryOptions opt;
  opt.deadline_us = 1;  // practically pre-expired relative budget
  opt.record = false;
  auto r = QueryProfiled(Retail(), "SELECT sum(amount) BY CUBE(city, month)",
                         opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

// deadline_us = 0 is "no deadline", not "instant deadline": the same CUBE
// query that dies under a 1 us budget above must complete untouched. This is
// the contract olap_cli --deadline-ms=0 and the /query endpoint's
// "deadline_ms": 0 rely on.
TEST(QueryLifecycleTest, ZeroDeadlineMeansNoDeadline) {
  QueryOptions opt;
  opt.deadline_us = 0;
  opt.record = false;
  auto r = QueryProfiled(Retail(), "SELECT sum(amount) BY CUBE(city, month)",
                         opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->profile.outcome, "ok");
  EXPECT_GT(r->table.num_rows(), 0u);
}

TEST(QueryLifecycleTest, StoppedQueryProfileRecordsOutcome) {
  CancellationToken token;
  token.Cancel();
  QueryOptions opt;
  opt.cancel = &token;
  opt.record = true;  // retain the profile so the outcome is observable
  auto r = QueryProfiled(Retail(), "SELECT sum(amount) BY city", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  std::vector<obs::RecordedProfile> recent =
      obs::FlightRecorder::Global().Snapshot(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].profile.outcome, "cancelled");
  EXPECT_NE(recent[0].ToJson().find("\"outcome\":\"cancelled\""),
            std::string::npos);
}

TEST(QueryLifecycleTest, SuccessfulQueryOutcomeIsOk) {
  QueryOptions opt;
  opt.record = true;
  auto r = QueryProfiled(Retail(), "SELECT sum(amount) BY store", opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->profile.outcome, "ok");
  EXPECT_NE(r->profile.ToJson().find("\"outcome\":\"ok\""),
            std::string::npos);
}

TEST(QueryLifecycleTest, QueryNeverAppearsInRegistryAfterReturn) {
  size_t before = obs::QueryRegistry::Global().ActiveCount();
  QueryOptions opt;
  opt.record = false;
  auto r = QueryProfiled(Retail(), "SELECT sum(amount) BY store", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(obs::QueryRegistry::Global().ActiveCount(), before);
}

}  // namespace
}  // namespace statcube
