// Tests for the morsel-driven task scheduler (statcube/exec): pool sizing
// and growth, ParallelFor coverage and morsel boundaries, work stealing,
// nested parallelism on pools of any size, cooperative cancellation,
// exception propagation through TaskGroup::Wait/ParallelFor, the
// STATCUBE_THREADS default, and the statcube.exec.* metrics surface.

#include "statcube/exec/task_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "statcube/obs/metrics.h"

namespace statcube::exec {
namespace {

// A latch the pre-C++20 way: blocks workers until Release().
class Gate {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(SchedulerTest, HardwareThreadsAtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1);
  EXPECT_GE(DefaultThreads(), 1);
  EXPECT_LE(DefaultThreads(), kMaxThreads);
}

TEST(SchedulerTest, DefaultThreadsReadsEnvironment) {
  ASSERT_EQ(setenv("STATCUBE_THREADS", "3", 1), 0);
  EXPECT_EQ(DefaultThreads(), 3);
  ASSERT_EQ(setenv("STATCUBE_THREADS", "100000", 1), 0);
  EXPECT_EQ(DefaultThreads(), kMaxThreads);  // clamped
  // Zero, negative, and garbage fall back to the hardware count.
  for (const char* bad : {"0", "-4", "abc", ""}) {
    ASSERT_EQ(setenv("STATCUBE_THREADS", bad, 1), 0);
    EXPECT_EQ(DefaultThreads(), HardwareThreads()) << "value '" << bad << "'";
  }
  ASSERT_EQ(unsetenv("STATCUBE_THREADS"), 0);
  EXPECT_EQ(DefaultThreads(), HardwareThreads());
}

TEST(SchedulerTest, EnsureThreadsGrowsButNeverShrinks) {
  TaskScheduler pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  pool.EnsureThreads(4);
  EXPECT_EQ(pool.num_threads(), 4);
  pool.EnsureThreads(1);  // never shrinks
  EXPECT_EQ(pool.num_threads(), 4);
  pool.EnsureThreads(kMaxThreads + 100);  // clamped
  EXPECT_EQ(pool.num_threads(), kMaxThreads);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  TaskScheduler pool(4);
  for (size_t n : {size_t(0), size_t(1), size_t(7), size_t(100),
                   size_t(1000)}) {
    for (size_t morsel : {size_t(1), size_t(3), size_t(64)}) {
      std::vector<std::atomic<int>> hits(n);
      ParallelForOptions opt;
      opt.scheduler = &pool;
      opt.morsel_size = morsel;
      ParallelFor(
          n,
          [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
              hits[i].fetch_add(1, std::memory_order_relaxed);
          },
          opt);
      for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " morsel=" << morsel;
    }
  }
}

TEST(ParallelForTest, MorselBoundariesDependOnlyOnSizeNotThreads) {
  // The determinism contract: (index, begin, end) triples are a pure
  // function of n and morsel_size. Collect them at several worker caps.
  const size_t n = 1000, morsel = 64;
  std::set<std::vector<size_t>> seen;
  for (int workers : {1, 2, 4, 8}) {
    TaskScheduler pool(workers);
    std::mutex mu;
    std::vector<std::vector<size_t>> triples;
    ParallelForOptions opt;
    opt.scheduler = &pool;
    opt.morsel_size = morsel;
    opt.max_workers = workers;
    ParallelFor(
        n,
        [&](size_t m, size_t begin, size_t end) {
          std::lock_guard<std::mutex> lock(mu);
          triples.push_back({m, begin, end});
        },
        opt);
    ASSERT_EQ(triples.size(), (n + morsel - 1) / morsel);
    for (const auto& t : triples) {
      EXPECT_EQ(t[1], t[0] * morsel);
      EXPECT_EQ(t[2], std::min(n, (t[0] + 1) * morsel));
      seen.insert(t);
    }
  }
  // Every thread count produced the same morsel set.
  EXPECT_EQ(seen.size(), (n + morsel - 1) / morsel);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // The waiting thread helps, so nesting works even on a 1-thread pool.
  for (int workers : {1, 4}) {
    TaskScheduler pool(workers);
    std::atomic<uint64_t> sum{0};
    ParallelForOptions outer;
    outer.scheduler = &pool;
    outer.morsel_size = 1;
    ParallelFor(
        4,
        [&](size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            ParallelForOptions inner;
            inner.scheduler = &pool;
            inner.morsel_size = 16;
            ParallelFor(
                100,
                [&](size_t, size_t b, size_t e) {
                  for (size_t j = b; j < e; ++j)
                    sum.fetch_add(j, std::memory_order_relaxed);
                },
                inner);
          }
        },
        outer);
    EXPECT_EQ(sum.load(), 4u * (99u * 100u / 2)) << workers << " workers";
  }
}

TEST(ParallelForTest, CancelledTokenSkipsRemainingMorsels) {
  TaskScheduler pool(2);
  // Pre-cancelled: no morsel runs at all.
  {
    CancellationToken token;
    token.Cancel();
    std::atomic<int> ran{0};
    ParallelForOptions opt;
    opt.scheduler = &pool;
    opt.cancel = &token;
    opt.morsel_size = 8;
    ParallelFor(
        100, [&](size_t, size_t, size_t) { ran.fetch_add(1); }, opt);
    EXPECT_EQ(ran.load(), 0);
  }
  // Cancelled from inside the body: later morsels fall through. The claim
  // counter is shared, so at most the morsels already claimed run.
  {
    CancellationToken token;
    std::atomic<int> ran{0};
    ParallelForOptions opt;
    opt.scheduler = &pool;
    opt.cancel = &token;
    opt.morsel_size = 1;
    opt.max_workers = 1;  // inline on the caller: deterministic order
    ParallelFor(
        100,
        [&](size_t, size_t, size_t) {
          ran.fetch_add(1);
          token.Cancel();
        },
        opt);
    EXPECT_EQ(ran.load(), 1);
  }
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  for (int workers : {1, 4}) {
    TaskScheduler pool(workers);
    ParallelForOptions opt;
    opt.scheduler = &pool;
    opt.morsel_size = 1;
    EXPECT_THROW(
        ParallelFor(
            64,
            [&](size_t m, size_t, size_t) {
              if (m == 3) throw std::runtime_error("morsel 3 failed");
            },
            opt),
        std::runtime_error)
        << workers << " workers";
    // The pool is still usable afterwards.
    std::atomic<int> ran{0};
    ParallelFor(
        8, [&](size_t, size_t, size_t) { ran.fetch_add(1); }, opt);
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(TaskGroupTest, WaitRethrowsFirstException) {
  TaskScheduler pool(2);
  TaskGroup group(&pool);
  group.Run([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 8; ++i) group.Run([] {});
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroupTest, CancelSkipsQueuedTaskBodies) {
  TaskScheduler pool(2);
  Gate gate;
  std::atomic<int> entered{0};
  TaskGroup blockers(&pool);
  // Occupy every worker so the next group's tasks stay queued.
  for (int i = 0; i < 2; ++i)
    blockers.Run([&] {
      entered.fetch_add(1);
      gate.Block();
    });
  while (entered.load() < 2) std::this_thread::yield();

  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) group.Run([&] { ran.fetch_add(1); });
  group.Cancel();
  gate.Release();
  group.Wait();     // accounted for, but no body ran
  blockers.Wait();
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGroupTest, WaitHelpsAndCountsSteals) {
  obs::EnabledScope obs_on(true);
  auto& steals =
      obs::MetricsRegistry::Global().GetCounter("statcube.exec.steals");
  uint64_t before = steals.Value();

  TaskScheduler pool(2);
  Gate gate;
  std::atomic<int> entered{0};
  TaskGroup blockers(&pool);
  for (int i = 0; i < 2; ++i)
    blockers.Run([&] {
      entered.fetch_add(1);
      gate.Block();
    });
  while (entered.load() < 2) std::this_thread::yield();
  // With every worker blocked, only the waiting (non-worker) thread can run
  // these — each pop from a foreign deque counts as a steal.
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) group.Run([&] { ran.fetch_add(1); });
  group.Wait();
  gate.Release();
  blockers.Wait();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_GE(steals.Value(), before + 4);
}

TEST(ExecMetricsTest, CountersAndHistogramAppearInSnapshots) {
  obs::EnabledScope obs_on(true);
  auto& reg = obs::MetricsRegistry::Global();
  uint64_t tasks = reg.GetCounter("statcube.exec.tasks").Value();
  uint64_t morsels = reg.GetCounter("statcube.exec.morsels").Value();
  uint64_t loops = reg.GetCounter("statcube.exec.parallel_for").Value();

  TaskScheduler pool(2);
  ParallelForOptions opt;
  opt.scheduler = &pool;
  opt.morsel_size = 10;
  ParallelFor(
      100, [](size_t, size_t, size_t) {}, opt);

  EXPECT_GT(reg.GetCounter("statcube.exec.tasks").Value(), tasks);
  EXPECT_GE(reg.GetCounter("statcube.exec.morsels").Value(), morsels + 10);
  EXPECT_EQ(reg.GetCounter("statcube.exec.parallel_for").Value(), loops + 1);
  EXPECT_GE(reg.GetGauge("statcube.exec.pool_size").Value(), 2.0);

  // Metrics register on first lookup; counters that have not fired yet
  // (e.g. tasks_cancelled) still appear once touched.
  for (const char* name :
       {"statcube.exec.steals", "statcube.exec.worker_busy_us",
        "statcube.exec.tasks_cancelled"})
    reg.GetCounter(name);
  reg.GetGauge("statcube.exec.queue_depth");

  // Text snapshot: one line per counter; the morsel-latency histogram
  // expands to cumulative le_ lines ending in le_inf == count.
  std::string text = reg.TextSnapshot();
  for (const char* name :
       {"statcube.exec.tasks", "statcube.exec.steals",
        "statcube.exec.morsels", "statcube.exec.parallel_for",
        "statcube.exec.worker_busy_us", "statcube.exec.tasks_cancelled",
        "statcube.exec.queue_depth", "statcube.exec.pool_size",
        "statcube.exec.morsel_us.count", "statcube.exec.morsel_us.le_inf"})
    EXPECT_NE(text.find(name), std::string::npos) << name;

  // JSON snapshot: the histogram serializes per-bucket with an "inf" tail.
  std::string json = reg.JsonSnapshot();
  EXPECT_NE(json.find("\"statcube.exec.morsel_us\":{\"count\":"),
            std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"inf\",\"count\":"), std::string::npos);
  EXPECT_NE(json.find("\"statcube.exec.pool_size\":"), std::string::npos);
}

TEST(ExecMetricsTest, DisabledGateMutatesNothing) {
  obs::EnabledScope obs_off(false);
  auto& reg = obs::MetricsRegistry::Global();
  uint64_t tasks = reg.GetCounter("statcube.exec.tasks").Value();
  uint64_t morsels = reg.GetCounter("statcube.exec.morsels").Value();

  TaskScheduler pool(2);
  ParallelForOptions opt;
  opt.scheduler = &pool;
  opt.morsel_size = 4;
  std::atomic<int> ran{0};
  ParallelFor(
      64, [&](size_t, size_t, size_t) { ran.fetch_add(1); }, opt);

  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(reg.GetCounter("statcube.exec.tasks").Value(), tasks);
  EXPECT_EQ(reg.GetCounter("statcube.exec.morsels").Value(), morsels);
}

}  // namespace
}  // namespace statcube::exec
