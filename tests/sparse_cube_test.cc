// Tests for the header-compressed sparse MOLAP cube: agreement with the
// dense cube, compression on sparse data, and incremental view maintenance
// in the materialized store.

#include "statcube/olap/sparse_cube.h"

#include <gtest/gtest.h>

#include "statcube/common/rng.h"
#include "statcube/materialize/view_store.h"
#include "statcube/olap/molap_cube.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

RetailData MakeSparse(int rows) {
  RetailOptions opt;
  opt.num_products = 50;
  opt.num_stores = 10;
  opt.num_days = 60;  // 30k cells
  opt.num_rows = rows;
  opt.seed = 21;
  return *MakeRetailWorkload(opt);
}

TEST(SparseCubeTest, AgreesWithDenseCube) {
  RetailData data = MakeSparse(2000);
  auto dense = MolapCube::Build(data.object, "amount");
  auto sparse = SparseMolapCube::Build(data.object, "amount");
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());

  std::vector<std::vector<EqFilter>> cases = {
      {},
      {{"product", Value("prod0")}},
      {{"store", Value("city1/s#1")}},
      {{"product", Value("prod3")}, {"day", Value("1996-1-4")}},
      {{"product", Value("never")}},
  };
  for (const auto& filters : cases) {
    auto a = dense->SumWhere(filters);
    auto b = sparse->SumWhere(filters);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NEAR(*a, *b, 1e-6);
  }
  EXPECT_FALSE(sparse->SumWhere({{"ghost", Value(1)}}).ok());

  // Point lookups agree too.
  auto pa = dense->GetCell({Value("prod1"), Value("city0/s#0"),
                            Value("1996-1-1")});
  auto pb = sparse->GetCell({Value("prod1"), Value("city0/s#0"),
                             Value("1996-1-1")});
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_NEAR(*pa, *pb, 1e-9);
}

TEST(SparseCubeTest, CompressesSparseCubes) {
  RetailData sparse_data = MakeSparse(800);  // ~2.5% density
  auto sparse = SparseMolapCube::Build(sparse_data.object, "amount");
  ASSERT_TRUE(sparse.ok());
  EXPECT_GT(sparse->compression_ratio(), 3.0);
  EXPECT_LT(sparse->ByteSize(), sparse->DenseByteSize());
}

TEST(SparseCubeTest, RandomizedEquivalenceSweep) {
  Rng rng(77);
  RetailData data = MakeSparse(1500);
  auto dense = MolapCube::Build(data.object, "amount");
  auto sparse = SparseMolapCube::Build(data.object, "amount");
  ASSERT_TRUE(dense.ok() && sparse.ok());
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<EqFilter> filters;
    if (rng.Bernoulli(0.7))
      filters.push_back(
          {"product", Value("prod" + std::to_string(rng.Uniform(50)))});
    if (rng.Bernoulli(0.5))
      filters.push_back(
          {"day", Value("1996-" + std::to_string(1 + rng.Uniform(2)) + "-" +
                        std::to_string(1 + rng.Uniform(30)))});
    auto a = dense->SumWhere(filters);
    auto b = sparse->SumWhere(filters);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_NEAR(*a, *b, 1e-6) << trial;
  }
}

TEST(IncrementalRefreshTest, MatchesFullRecompute) {
  RetailData data = MakeSparse(3000);
  auto store = MaterializedCubeStore::Create(
      data.flat, {"product", "store", "day"},
      {{AggFn::kSum, "amount", "revenue"},
       {AggFn::kCountAll, "", "n"},
       {AggFn::kMax, "amount", "peak"}});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Materialize(0b001).ok());
  ASSERT_TRUE(store->Materialize(0b011).ok());

  // New day of data.
  RetailData more = MakeSparse(3500);
  std::vector<Row> delta(more.flat.rows().begin() + 3000,
                         more.flat.rows().end());
  auto reagg = store->AppendAndRefresh(delta);
  ASSERT_TRUE(reagg.ok()) << reagg.status().ToString();
  EXPECT_EQ(*reagg, 2u * 500);  // 2 views x 500 delta rows

  // Every view now equals a from-scratch recompute over base+delta.
  Table full("full", data.flat.schema());
  for (const Row& r : data.flat.rows()) full.AppendRowUnchecked(r);
  for (const Row& r : delta) full.AppendRowUnchecked(r);
  for (uint32_t mask : {0b001u, 0b011u}) {
    auto q = store->Query(mask);
    ASSERT_TRUE(q.ok());
    std::vector<std::string> dims;
    if (mask & 1) dims.push_back("product");
    if (mask & 2) dims.push_back("store");
    auto direct = GroupBy(full, dims,
                          {{AggFn::kSum, "amount", "revenue"},
                           {AggFn::kCountAll, "", "n"},
                           {AggFn::kMax, "amount", "peak"}});
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(q->num_rows(), direct->num_rows()) << mask;
    for (size_t r = 0; r < q->num_rows(); ++r)
      for (size_t c = 0; c < q->num_columns(); ++c) {
        if (q->at(r, c).is_numeric()) {
          EXPECT_NEAR(q->at(r, c).AsDouble(), direct->at(r, c).AsDouble(),
                      1e-6)
              << mask << " " << r << " " << c;
        } else {
          EXPECT_EQ(q->at(r, c), direct->at(r, c));
        }
      }
  }
}

TEST(IncrementalRefreshTest, ValidatesArity) {
  RetailData data = MakeSparse(100);
  auto store = MaterializedCubeStore::Create(
      data.flat, {"product"}, {{AggFn::kSum, "amount", "revenue"}});
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->AppendAndRefresh({{Value(1)}}).ok());
}

}  // namespace
}  // namespace statcube
