// Concurrency hammering for observability v2, designed to run under TSan
// (the thread-sanitize CI jobs pick up every *_test.cc): four querier
// threads run traced parallel queries (threads=4, so every query fans
// morsels across a shared worker pool) while two scraper threads loop over
// /statusz, /tracez, and /metrics through a real socket and a MetricSampler
// ticks in the background. Asserts that every completed profile carries a
// complete span tree — each morsel span parented under its own query's
// root, never under another query's — and that scrapers always see
// well-formed pages (a torn time-series ring or a half-written trace would
// surface as invalid JSON, a broken tree, or a TSan report).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.h"
#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/http_server.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/timeseries_ring.h"
#include "statcube/obs/trace.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return "";
  }
  std::string req = "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n"
                    "Connection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return "";
    }
    off += size_t(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, size_t(n));
  close(fd);
  return resp;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// A profile's span tree is complete: one root named "query", every other
// span closed and reaching the root through strictly-decreasing parent
// links (a span recorded on a worker that escaped its query's tree, or an
// unjoined task's half-open span, fails here).
void ExpectCompleteTree(const obs::QueryProfile& profile, const char* what) {
  const std::vector<obs::SpanRecord>& spans = profile.trace.spans();
  ASSERT_FALSE(spans.empty()) << what;
  EXPECT_EQ(spans[0].name, "query") << what;
  EXPECT_EQ(spans[0].parent, -1) << what;
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_FALSE(spans[i].open) << what << " span " << spans[i].name;
    int32_t p = int32_t(i);
    while (spans[size_t(p)].parent != -1) {
      int32_t up = spans[size_t(p)].parent;
      ASSERT_GE(up, 0) << what;
      ASSERT_LT(up, p) << what << " non-decreasing parent link";
      p = up;
    }
    EXPECT_EQ(p, 0) << what << " span " << spans[i].name
                    << " detached from the query root";
  }
}

TEST(ObsStatuszConcurrencyTest, QueriersAndScrapersRaceCleanly) {
  obs::EnabledScope on(true);
  obs::FlightRecorder::Global().Clear();
  auto data = MakeRetailWorkload();
  ASSERT_TRUE(data.ok());

  obs::MetricSamplerOptions mopt;
  mopt.interval_ms = 10;
  mopt.ring_capacity = 32;
  mopt.percentile_window = 4;
  obs::MetricSampler sampler(mopt);
  sampler.AddDefaultStatuszSeries();
  sampler.Start();

  obs::StatsServerOptions sopt;
  sopt.port = 0;
  sopt.sampler = &sampler;
  obs::StatsServer server(sopt);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  constexpr int kQueriers = 4;
  constexpr int kQueriesEach = 6;
  const char* kQueries[] = {
      "SELECT sum(amount) BY city",
      "SELECT sum(amount) BY store",
      "SELECT sum(qty), avg(amount) BY category",
  };

  std::atomic<int> queriers_done{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  for (int q = 0; q < kQueriers; ++q) {
    threads.emplace_back([&, q] {
      for (int i = 0; i < kQueriesEach; ++i) {
        QueryOptions opt;
        opt.threads = 4;
        auto r = QueryProfiled(data->object, kQueries[(q + i) % 3], opt);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        ExpectCompleteTree(r->profile, kQueries[(q + i) % 3]);
        // Parallel execution really happened and was attributed here.
        EXPECT_GT(r->profile.resources.morsels, 0u);
        EXPECT_GT(r->profile.resources.tasks_spawned, 0u);
      }
      ++queriers_done;
    });
  }

  // Scrapers hammer the endpoints until every querier finishes, validating
  // each response: JSON must parse, HTML must be complete (no torn reads).
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&] {
      size_t scrapes = 0;
      while (queriers_done.load(std::memory_order_acquire) < kQueriers ||
             scrapes < 3) {
        std::string statusz = Body(HttpGet(port, "/statusz"));
        EXPECT_NE(statusz.find("id=\"sparklines\""), std::string::npos);
        EXPECT_NE(statusz.find("</html>"), std::string::npos);

        std::string tracez = Body(HttpGet(port, "/tracez?format=json&n=5"));
        EXPECT_TRUE(JsonChecker(tracez).Valid()) << tracez.substr(0, 400);

        std::string metrics = Body(HttpGet(port, "/metrics"));
        EXPECT_NE(metrics.find("statcube"), std::string::npos);
        ++scrapes;
      }
    });
  }

  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiescent now: every retained profile in the recorder must also hold a
  // complete tree (they were copied in while scrapers were reading).
  for (const obs::RecordedProfile& rec :
       obs::FlightRecorder::Global().Snapshot()) {
    ExpectCompleteTree(rec.profile, rec.query.c_str());
  }
  EXPECT_EQ(obs::FlightRecorder::Global().TotalRecorded(),
            uint64_t(kQueriers) * kQueriesEach);

  server.Stop();
  sampler.Stop();
  obs::FlightRecorder::Global().Clear();
}

}  // namespace
}  // namespace statcube
