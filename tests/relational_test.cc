// Tests for the relational engine: table, expressions, operators, group-by,
// join, star schema.

#include <gtest/gtest.h>

#include "statcube/relational/aggregate.h"
#include "statcube/relational/expression.h"
#include "statcube/relational/join.h"
#include "statcube/relational/operators.h"
#include "statcube/relational/star_schema.h"
#include "statcube/relational/table.h"

namespace statcube {
namespace {

Table MakeEmployment() {
  // Mirrors the paper's Figure 10-style relation.
  Schema s;
  s.AddColumn("state", ValueType::kString);
  s.AddColumn("sex", ValueType::kString);
  s.AddColumn("year", ValueType::kInt64);
  s.AddColumn("population", ValueType::kInt64);
  Table t("employment", s);
  auto add = [&](const char* st, const char* sex, int year, int pop) {
    EXPECT_TRUE(t.AppendRow({Value(st), Value(sex), Value(year), Value(pop)}).ok());
  };
  add("CA", "M", 1990, 100);
  add("CA", "F", 1990, 110);
  add("CA", "M", 1991, 120);
  add("CA", "F", 1991, 130);
  add("NV", "M", 1990, 10);
  add("NV", "F", 1990, 12);
  add("NV", "M", 1991, 14);
  add("NV", "F", 1991, 16);
  return t;
}

TEST(TableTest, AppendRowChecksArity) {
  Table t = MakeEmployment();
  Status s = t.AppendRow({Value("CA")});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 8u);
}

TEST(TableTest, ColumnExtraction) {
  Table t = MakeEmployment();
  auto col = t.Column("population");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->size(), 8u);
  EXPECT_EQ((*col)[0], Value(100));
  EXPECT_FALSE(t.Column("nope").ok());
}

TEST(TableTest, SortBy) {
  Table t = MakeEmployment();
  ASSERT_TRUE(t.SortBy({"population"}).ok());
  EXPECT_EQ(t.at(0, 3), Value(10));
  EXPECT_EQ(t.at(7, 3), Value(130));
}

TEST(ExpressionTest, ColumnCompareOps) {
  Table t = MakeEmployment();
  auto ge = expr::ColumnCompare(t.schema(), "population", CompareOp::kGe,
                                Value(100));
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(Select(t, *ge).num_rows(), 4u);
  auto lt = expr::ColumnCompare(t.schema(), "population", CompareOp::kLt,
                                Value(14));
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(Select(t, *lt).num_rows(), 2u);
}

TEST(ExpressionTest, InBetweenAndOrNot) {
  Table t = MakeEmployment();
  auto in_state =
      expr::ColumnIn(t.schema(), "state", {Value("NV"), Value("OR")});
  ASSERT_TRUE(in_state.ok());
  EXPECT_EQ(Select(t, *in_state).num_rows(), 4u);

  auto between = expr::ColumnBetween(t.schema(), "population", Value(12),
                                     Value(100));
  ASSERT_TRUE(between.ok());
  EXPECT_EQ(Select(t, *between).num_rows(), 4u);  // 12,14,16,100

  auto is_m = expr::ColumnEq(t.schema(), "sex", Value("M"));
  ASSERT_TRUE(is_m.ok());
  auto both = expr::And({*in_state, *is_m});
  EXPECT_EQ(Select(t, both).num_rows(), 2u);
  auto either = expr::Or({*in_state, *is_m});
  EXPECT_EQ(Select(t, either).num_rows(), 6u);
  EXPECT_EQ(Select(t, expr::Not(*is_m)).num_rows(), 4u);
}

TEST(ExpressionTest, MissingColumnErrors) {
  Table t = MakeEmployment();
  EXPECT_FALSE(expr::ColumnEq(t.schema(), "ghost", Value(1)).ok());
}

TEST(OperatorsTest, ProjectKeepsOrderAndDuplicates) {
  Table t = MakeEmployment();
  auto p = Project(t, {"sex", "state"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_columns(), 2u);
  EXPECT_EQ(p->num_rows(), 8u);
  EXPECT_EQ(p->at(0, 0), Value("M"));
  EXPECT_EQ(p->at(0, 1), Value("CA"));
}

TEST(OperatorsTest, ProjectDistinct) {
  Table t = MakeEmployment();
  auto p = ProjectDistinct(t, {"state"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_rows(), 2u);
}

TEST(OperatorsTest, UnionAllRequiresSameSchema) {
  Table t = MakeEmployment();
  auto u = UnionAll(t, t);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_rows(), 16u);

  Schema other;
  other.AddColumn("x", ValueType::kInt64);
  Table o("o", other);
  EXPECT_FALSE(UnionAll(t, o).ok());
}

TEST(OperatorsTest, UnionDistinctDedups) {
  Table t = MakeEmployment();
  auto u = UnionDistinct(t, t);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_rows(), 8u);
}

TEST(OperatorsTest, Limit) {
  Table t = MakeEmployment();
  EXPECT_EQ(Limit(t, 3).num_rows(), 3u);
  EXPECT_EQ(Limit(t, 100).num_rows(), 8u);
}

TEST(AggregateTest, GroupBySums) {
  Table t = MakeEmployment();
  auto g = GroupBy(t, {"state"}, {{AggFn::kSum, "population", ""}});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_rows(), 2u);
  // sorted by state: CA first
  EXPECT_EQ(g->at(0, 0), Value("CA"));
  EXPECT_EQ(g->at(0, 1), Value(460.0));
  EXPECT_EQ(g->at(1, 1), Value(52.0));
}

TEST(AggregateTest, MultipleAggs) {
  Table t = MakeEmployment();
  auto g = GroupBy(t, {"sex"},
                   {{AggFn::kSum, "population", "total"},
                    {AggFn::kAvg, "population", "mean"},
                    {AggFn::kMin, "population", "lo"},
                    {AggFn::kMax, "population", "hi"},
                    {AggFn::kCountAll, "", "n"}});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_rows(), 2u);
  // F: 110+130+12+16 = 268
  EXPECT_EQ(g->at(0, 0), Value("F"));
  EXPECT_EQ(g->at(0, 1), Value(268.0));
  EXPECT_EQ(g->at(0, 2), Value(67.0));
  EXPECT_EQ(g->at(0, 3), Value(12.0));
  EXPECT_EQ(g->at(0, 4), Value(130.0));
  EXPECT_EQ(g->at(0, 5), Value(4));
}

TEST(AggregateTest, GlobalGroup) {
  Table t = MakeEmployment();
  auto g = GroupBy(t, {}, {{AggFn::kSum, "population", ""}});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_rows(), 1u);
  EXPECT_EQ(g->at(0, 0), Value(512.0));
}

TEST(AggregateTest, CountSkipsNulls) {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  s.AddColumn("v", ValueType::kInt64);
  Table t("t", s);
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(3)}).ok());
  auto g = GroupBy(t, {"k"},
                   {{AggFn::kCount, "v", "nv"}, {AggFn::kCountAll, "", "n"}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->at(0, 1), Value(2));
  EXPECT_EQ(g->at(0, 2), Value(3));
}

TEST(AggregateTest, VarianceAndStdDev) {
  Schema s;
  s.AddColumn("v", ValueType::kDouble);
  Table t("t", s);
  for (double d : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    ASSERT_TRUE(t.AppendRow({Value(d)}).ok());
  auto g = GroupBy(t, {}, {{AggFn::kVariance, "v", ""}, {AggFn::kStdDev, "v", ""}});
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->at(0, 0).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(g->at(0, 1).AsDouble(), 2.0);
}

TEST(AggregateTest, StateMergeEqualsDirect) {
  // Merging two disjoint halves equals aggregating the whole: the property
  // the cube builder and materialized views depend on.
  Table t = MakeEmployment();
  AggState whole, a, b;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    whole.Add(t.at(i, 3));
    (i < 4 ? a : b).Add(t.at(i, 3));
  }
  a.Merge(b);
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMin,
                   AggFn::kMax, AggFn::kVariance, AggFn::kStdDev}) {
    EXPECT_EQ(a.Finalize(fn), whole.Finalize(fn)) << AggFnName(fn);
  }
}

TEST(JoinTest, HashJoinInner) {
  Schema fs;
  fs.AddColumn("store_id", ValueType::kInt64);
  fs.AddColumn("amount", ValueType::kInt64);
  Table fact("sales", fs);
  ASSERT_TRUE(fact.AppendRow({Value(1), Value(10)}).ok());
  ASSERT_TRUE(fact.AppendRow({Value(2), Value(20)}).ok());
  ASSERT_TRUE(fact.AppendRow({Value(1), Value(30)}).ok());
  ASSERT_TRUE(fact.AppendRow({Value(9), Value(99)}).ok());  // dangling

  Schema ds;
  ds.AddColumn("id", ValueType::kInt64);
  ds.AddColumn("city", ValueType::kString);
  Table dim("store", ds);
  ASSERT_TRUE(dim.AppendRow({Value(1), Value("sf")}).ok());
  ASSERT_TRUE(dim.AppendRow({Value(2), Value("la")}).ok());

  auto j = HashJoin(fact, "store_id", dim, "id");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 3u);  // dangling fact row dropped
  EXPECT_EQ(j->num_columns(), 3u);
  ASSERT_TRUE(j->schema().Contains("city"));
}

TEST(JoinTest, LeftOuterKeepsDanglingRows) {
  Schema fs;
  fs.AddColumn("store_id", ValueType::kInt64);
  fs.AddColumn("amount", ValueType::kInt64);
  Table fact("sales", fs);
  ASSERT_TRUE(fact.AppendRow({Value(1), Value(10)}).ok());
  ASSERT_TRUE(fact.AppendRow({Value(9), Value(99)}).ok());  // dangling

  Schema ds;
  ds.AddColumn("id", ValueType::kInt64);
  ds.AddColumn("city", ValueType::kString);
  Table dim("store", ds);
  ASSERT_TRUE(dim.AppendRow({Value(1), Value("sf")}).ok());

  auto j = LeftOuterHashJoin(fact, "store_id", dim, "id");
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j->num_rows(), 2u);
  EXPECT_EQ(j->at(0, 2), Value("sf"));
  EXPECT_TRUE(j->at(1, 2).is_null());  // NULL-padded right side
  EXPECT_EQ(j->at(1, 1), Value(99));
  // Inner join drops the dangling row; outer keeps everything on the left.
  auto inner = HashJoin(fact, "store_id", dim, "id");
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->num_rows(), 1u);
}

TEST(JoinTest, NameClashPrefixed) {
  Schema fs;
  fs.AddColumn("k", ValueType::kInt64);
  fs.AddColumn("name", ValueType::kString);
  Table left("l", fs);
  ASSERT_TRUE(left.AppendRow({Value(1), Value("left")}).ok());
  Schema ds;
  ds.AddColumn("k", ValueType::kInt64);
  ds.AddColumn("name", ValueType::kString);
  Table right("r", ds);
  ASSERT_TRUE(right.AppendRow({Value(1), Value("right")}).ok());
  auto j = HashJoin(left, "k", right, "k");
  ASSERT_TRUE(j.ok());
  EXPECT_TRUE(j->schema().Contains("r.name"));
}

StarSchema MakeHospitalStar() {
  // The paper's Figure 11: hospital / procedure / time dimensions.
  Schema fs;
  fs.AddColumn("hospital_id", ValueType::kInt64);
  fs.AddColumn("procedure_id", ValueType::kInt64);
  fs.AddColumn("time_id", ValueType::kInt64);
  fs.AddColumn("number", ValueType::kInt64);
  Table fact("fact", fs);
  // hospital 1 (sf, CA), 2 (la, CA), 3 (reno, NV)
  // procedure 1 (xray, radiology), 2 (mri, radiology), 3 (cast, ortho)
  int k = 0;
  for (int h = 1; h <= 3; ++h)
    for (int p = 1; p <= 3; ++p)
      for (int t = 1; t <= 2; ++t)
        EXPECT_TRUE(
            fact.AppendRow({Value(h), Value(p), Value(t), Value(++k)}).ok());

  StarSchema star(std::move(fact));

  Schema hs;
  hs.AddColumn("hospital_id", ValueType::kInt64);
  hs.AddColumn("hname", ValueType::kString);
  hs.AddColumn("city", ValueType::kString);
  hs.AddColumn("hstate", ValueType::kString);
  Table hosp("hospital", hs);
  EXPECT_TRUE(hosp.AppendRow({Value(1), Value("h1"), Value("sf"), Value("CA")}).ok());
  EXPECT_TRUE(hosp.AppendRow({Value(2), Value("h2"), Value("la"), Value("CA")}).ok());
  EXPECT_TRUE(hosp.AppendRow({Value(3), Value("h3"), Value("reno"), Value("NV")}).ok());
  EXPECT_TRUE(star.AddDimension({"hospital", std::move(hosp), "hospital_id",
                                 "hospital_id",
                                 {"city", "hstate"}})
                  .ok());

  Schema ps;
  ps.AddColumn("procedure_id", ValueType::kInt64);
  ps.AddColumn("pname", ValueType::kString);
  ps.AddColumn("ptype", ValueType::kString);
  Table proc("procedure", ps);
  EXPECT_TRUE(proc.AppendRow({Value(1), Value("xray"), Value("radiology")}).ok());
  EXPECT_TRUE(proc.AppendRow({Value(2), Value("mri"), Value("radiology")}).ok());
  EXPECT_TRUE(proc.AppendRow({Value(3), Value("cast"), Value("ortho")}).ok());
  EXPECT_TRUE(star.AddDimension({"procedure", std::move(proc), "procedure_id",
                                 "procedure_id",
                                 {"ptype"}})
                  .ok());
  return star;
}

TEST(StarSchemaTest, RejectsBadDimension) {
  StarSchema star = MakeHospitalStar();
  Schema ds;
  ds.AddColumn("id", ValueType::kInt64);
  Table d("d", ds);
  // fk not in fact
  EXPECT_FALSE(star.AddDimension({"bogus", d, "id", "ghost_fk", {}}).ok());
  // key not in dimension table
  EXPECT_FALSE(star.AddDimension({"bogus", d, "ghost", "hospital_id", {}}).ok());
}

TEST(StarSchemaTest, OwnerResolution) {
  StarSchema star = MakeHospitalStar();
  auto owner = star.OwnerOf("city");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, 0);
  owner = star.OwnerOf("number");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, -1);
  EXPECT_FALSE(star.OwnerOf("ghost").ok());
}

TEST(StarSchemaTest, AggregateByDimensionAttribute) {
  StarSchema star = MakeHospitalStar();
  auto g = star.Aggregate({"hstate"}, {{AggFn::kSum, "number", "total"}});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_rows(), 2u);
  // Sum over all 18 fact rows = 171; NV owns hospital 3 => rows 13..18 = 93.
  EXPECT_EQ(g->at(0, 0), Value("CA"));
  EXPECT_EQ(g->at(0, 1), Value(78.0));
  EXPECT_EQ(g->at(1, 0), Value("NV"));
  EXPECT_EQ(g->at(1, 1), Value(93.0));
}

TEST(StarSchemaTest, GroupByFactOwnedAttribute) {
  // Grouping by a fact-table column requires no join at all.
  StarSchema star = MakeHospitalStar();
  auto g = star.Aggregate({"time_id"}, {{AggFn::kSum, "number", "total"}});
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_rows(), 2u);
  double t = 0;
  for (const Row& r : g->rows()) t += r[1].AsDouble();
  EXPECT_DOUBLE_EQ(t, 171.0);  // sum 1..18
}

TEST(StarSchemaTest, DenormalizeJoinsOnlyNeededDimensions) {
  StarSchema star = MakeHospitalStar();
  auto d = star.Denormalize({"city"});
  ASSERT_TRUE(d.ok());
  // Only the hospital dimension joined: its columns appear, procedure's not.
  EXPECT_TRUE(d->schema().Contains("city"));
  EXPECT_FALSE(d->schema().Contains("ptype"));
  EXPECT_FALSE(star.Denormalize({"ghost"}).ok());
}

TEST(StarSchemaTest, AggregateWithFilterAcrossTwoDimensions) {
  StarSchema star = MakeHospitalStar();
  auto g = star.Aggregate({"ptype"}, {{AggFn::kCountAll, "", "n"}},
                          {{"hstate", Value("CA")}});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_rows(), 2u);
  EXPECT_EQ(g->at(0, 0), Value("ortho"));
  EXPECT_EQ(g->at(0, 1), Value(4));  // 2 hospitals x 1 proc x 2 times
  EXPECT_EQ(g->at(1, 0), Value("radiology"));
  EXPECT_EQ(g->at(1, 1), Value(8));
}

}  // namespace
}  // namespace statcube
