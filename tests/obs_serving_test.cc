// Tests for the observability serving layer: shared JSON escaping, the
// Prometheus exporter, the structured log (levels, sinks, token-bucket rate
// limit), the flight recorder (ring semantics, slow-query promotion), and
// the embedded HTTP stats server end-to-end over a real socket.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.h"
#include "statcube/obs/exporter.h"
#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/http_server.h"
#include "statcube/obs/json.h"
#include "statcube/obs/log.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_profile.h"
#include "statcube/obs/trace.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

// ------------------------------------------------- tiny blocking client
// One HTTP/1.1 request against localhost:port; returns the raw response
// (headers + body) or "" on connect/IO failure.

std::string HttpGet(uint16_t port, const std::string& target,
                    const std::string& method = "GET") {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return "";
  }
  std::string req = method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n"
                    "Connection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return "";
    }
    off += size_t(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, size_t(n));
  close(fd);
  return resp;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// ------------------------------------------------------------ JsonEscape

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::JsonEscape(std::string("a\x01z")), "a\\u0001z");
  EXPECT_EQ(obs::JsonStr("x\"y"), "\"x\\\"y\"");
  // Every escaped string must parse as JSON.
  for (const char* hostile :
       {"\"", "\\", "\n\t\r\b\f", "\x01\x02\x1f", "mix\"ed\\every\nthing"}) {
    EXPECT_TRUE(JsonChecker(obs::JsonStr(hostile)).Valid())
        << obs::JsonStr(hostile);
  }
}

// Hostile names flow through every serializer and stay valid JSON.
TEST(JsonEscapeTest, SerializersSurviveHostileNames) {
  const std::string hostile = "evil\"name\\with\ncontrol\x01chars";

  // Metrics registry JSON snapshot.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.GetCounter("statcube.test." + hostile).Add(1);
  EXPECT_TRUE(JsonChecker(reg.JsonSnapshot()).Valid()) << reg.JsonSnapshot();

  // Trace Chrome export with a hostile span name.
  {
    obs::EnabledScope on(true);
    obs::TraceScope scope;
    { obs::Span s(hostile); }
    EXPECT_TRUE(JsonChecker(scope.trace().ChromeTraceJson()).Valid())
        << scope.trace().ChromeTraceJson();
  }

  // QueryProfile JSON with hostile operator and backend names.
  {
    obs::EnabledScope on(true);
    obs::ProfileScope scope;
    obs::RecordOperator(hostile.c_str(), 1, 1);
    obs::RecordBackend(hostile, 1, 1);
    obs::QueryProfile p = scope.Take();
    EXPECT_TRUE(JsonChecker(p.ToJson()).Valid()) << p.ToJson();
  }

  // Flight-recorder entry with hostile query text.
  {
    obs::FlightRecorder rec(4);
    obs::EnabledScope on(true);
    obs::ProfileScope scope;
    rec.Record(scope.Take(), "SELECT \"\\\n\x02 FROM nowhere");
    EXPECT_TRUE(JsonChecker(rec.ToJson()).Valid()) << rec.ToJson();
  }

  // Log line with hostile event and field values.
  {
    obs::LogEvent ev(obs::LogLevel::kError, hostile);
    ev.Str("field", hostile).Num("n", 1.5).Int("i", -2).Bool("b", true);
    EXPECT_TRUE(JsonChecker(ev.Render()).Valid()) << ev.Render();
  }
  reg.Reset();
}

// -------------------------------------------------------------- exporter

TEST(ExporterTest, PrometheusNameSanitization) {
  EXPECT_EQ(obs::PrometheusName("statcube.query.latency_us"),
            "statcube_query_latency_us");
  EXPECT_EQ(obs::PrometheusName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(obs::PrometheusName("9lives"), "_9lives");
}

TEST(ExporterTest, RendersTypedMetricsWithCumulativeBuckets) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.GetCounter("statcube.test.requests").Add(7);
  reg.GetGauge("statcube.test.temperature").Set(36.6);
  obs::Histogram& h = reg.GetHistogram("statcube.test.lat_us", {10, 100});
  h.Observe(5);
  h.Observe(50);
  h.Observe(5000);

  std::string text = obs::PrometheusSnapshot(reg);
  EXPECT_NE(text.find("# TYPE statcube_test_requests counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("statcube_test_requests 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE statcube_test_temperature gauge"),
            std::string::npos);
  EXPECT_NE(text.find("statcube_test_temperature 36.6"), std::string::npos);
  EXPECT_NE(text.find("# TYPE statcube_test_lat_us histogram"),
            std::string::npos);
  // Buckets are cumulative with a final +Inf equal to the count.
  EXPECT_NE(text.find("statcube_test_lat_us_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("statcube_test_lat_us_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("statcube_test_lat_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("statcube_test_lat_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("statcube_test_lat_us_sum 5055"), std::string::npos);
  // Derived percentile gauges exist.
  EXPECT_NE(text.find("statcube_test_lat_us_p50 "), std::string::npos);
  EXPECT_NE(text.find("statcube_test_lat_us_p95 "), std::string::npos);
  EXPECT_NE(text.find("statcube_test_lat_us_p99 "), std::string::npos);

  // Prometheus text format invariants: every non-comment line is
  // `name{labels} value` or `name value` with a parseable value.
  for (size_t start = 0; start < text.size();) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    char* endp = nullptr;
    strtod(line.c_str() + sp + 1, &endp);
    EXPECT_EQ(*endp, '\0') << "unparseable value in: " << line;
  }
  reg.Reset();
}

// ------------------------------------------------------------------- log

TEST(LogTest, StructuredLineShapeAndLevels) {
  std::vector<std::string> lines;
  auto prev = obs::SetLogSink(
      [&lines](const std::string& line) { lines.push_back(line); });
  obs::SetLogRateLimit(0, 0);  // disable limiting for this test

  obs::LogEvent(obs::LogLevel::kInfo, "test_event")
      .Str("query", "SELECT sum(amount) BY city")
      .Int("rows", 42)
      .Num("latency_us", 12.5)
      .Bool("slow", false)
      .Emit();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(JsonChecker(lines[0]).Valid()) << lines[0];
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"event\":\"test_event\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"rows\":42"), std::string::npos);
  EXPECT_NE(lines[0].find("\"slow\":false"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ts\":\""), std::string::npos);

  // Below min level: nothing emitted, not even rendered.
  obs::LogLevel prev_level = obs::SetMinLogLevel(obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::LogEvent(obs::LogLevel::kInfo, "dropped").Emit());
  EXPECT_TRUE(obs::LogEvent(obs::LogLevel::kError, "kept").Emit());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"kept\""), std::string::npos);

  obs::SetMinLogLevel(prev_level);
  obs::SetLogRateLimit(100, 50);
  obs::SetLogSink(std::move(prev));
}

TEST(LogTest, TokenBucketLimitsBurst) {
  std::vector<std::string> lines;
  auto prev = obs::SetLogSink(
      [&lines](const std::string& line) { lines.push_back(line); });
  // 5-token bucket, negligible refill: exactly 5 of 50 get through.
  obs::SetLogRateLimit(0.0001, 5);
  uint64_t dropped_before = obs::LogDroppedCount();
  int emitted = 0;
  for (int i = 0; i < 50; ++i)
    if (obs::LogEvent(obs::LogLevel::kError, "burst").Emit()) ++emitted;
  EXPECT_EQ(emitted, 5);
  EXPECT_EQ(lines.size(), 5u);
  EXPECT_EQ(obs::LogDroppedCount() - dropped_before, 45u);

  obs::SetLogRateLimit(100, 50);
  obs::SetLogSink(std::move(prev));
}

// -------------------------------------------------------- flight recorder

obs::QueryProfile MakeProfile(const std::string& backend) {
  obs::EnabledScope on(true);
  obs::ProfileScope scope;
  obs::RecordBackend(backend, 3, 12288);
  return scope.Take();
}

TEST(FlightRecorderTest, RingEvictsOldestAndIdsAreMonotonic) {
  obs::FlightRecorder rec(3);
  uint64_t first = rec.Record(MakeProfile("molap"), "q1");
  rec.Record(MakeProfile("molap"), "q2");
  rec.Record(MakeProfile("rolap"), "q3");
  uint64_t last = rec.Record(MakeProfile("rolap"), "q4");
  EXPECT_EQ(last, first + 3);
  EXPECT_EQ(rec.TotalRecorded(), 4u);

  auto entries = rec.Snapshot();
  ASSERT_EQ(entries.size(), 3u);  // q1 evicted
  EXPECT_EQ(entries[0].query, "q2");
  EXPECT_EQ(entries[2].query, "q4");
  for (size_t i = 1; i < entries.size(); ++i)
    EXPECT_EQ(entries[i].id, entries[i - 1].id + 1);

  // Get by id: evicted ids are gone, retained ids round-trip.
  EXPECT_FALSE(rec.Get(first).has_value());
  auto got = rec.Get(last);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->query, "q4");
  EXPECT_EQ(got->profile.backend, "rolap");

  // Limited snapshot takes the newest.
  auto latest = rec.Snapshot(1);
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_EQ(latest[0].query, "q4");

  EXPECT_TRUE(JsonChecker(rec.ToJson()).Valid()) << rec.ToJson();
  rec.Clear();
  EXPECT_TRUE(rec.Snapshot().empty());
  EXPECT_EQ(rec.TotalRecorded(), 4u);  // ids keep advancing
}

TEST(FlightRecorderTest, SlowQueryEmitsExactlyOneLogLine) {
  std::vector<std::string> lines;
  auto prev = obs::SetLogSink(
      [&lines](const std::string& line) { lines.push_back(line); });
  obs::SetLogRateLimit(0, 0);

  obs::FlightRecorder rec(8);
  rec.SetSlowQueryThresholdUs(1);  // every real query exceeds 1us

  // Under threshold 0 (disabled): no log.
  rec.SetSlowQueryThresholdUs(0);
  rec.Record(MakeProfile("molap"), "fast");
  EXPECT_TRUE(lines.empty());

  // Over threshold: exactly one slow_query line, carrying the query text.
  // The profiled scope sleeps 2ms so its latency beats the 1us threshold
  // deterministically even on a coarse clock.
  rec.SetSlowQueryThresholdUs(1);
  obs::QueryProfile slow_profile;
  {
    obs::EnabledScope on(true);
    obs::ProfileScope scope;
    obs::RecordBackend("rolap", 3, 12288);
    // Simulates query latency (not a wait-for-condition): the recorder must
    // see a nonzero duration. statcube-lint: allow(sleep)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    slow_profile = scope.Take();
  }
  ASSERT_GE(slow_profile.trace.TotalDurationNs(), 1000u);
  uint64_t id = rec.Record(slow_profile, "SELECT slow BY something");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(JsonChecker(lines[0]).Valid()) << lines[0];
  EXPECT_NE(lines[0].find("\"event\":\"slow_query\""), std::string::npos);
  EXPECT_NE(lines[0].find("SELECT slow BY something"), std::string::npos);
  EXPECT_NE(lines[0].find("\"profile_id\":" + std::to_string(id)),
            std::string::npos);
  {
    auto got = rec.Get(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->slow);
  }

  obs::SetLogRateLimit(100, 50);
  obs::SetLogSink(std::move(prev));
}

// ------------------------------------------------------------ http server

class StatsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::StatsServerOptions opt;
    opt.port = 0;  // kernel-assigned
    opt.num_workers = 2;
    server_ = std::make_unique<obs::StatsServer>(opt);
    auto s = server_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override { server_->Stop(); }
  std::unique_ptr<obs::StatsServer> server_;
};

TEST_F(StatsServerTest, HealthzAndNotFound) {
  std::string resp = HttpGet(server_->port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_EQ(Body(resp), "ok\n");

  EXPECT_NE(HttpGet(server_->port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(HttpGet(server_->port(), "/healthz", "POST").find("405"),
            std::string::npos);
  // HEAD answers headers only.
  std::string head = HttpGet(server_->port(), "/healthz", "HEAD");
  EXPECT_NE(head.find("200 OK"), std::string::npos);
  EXPECT_EQ(Body(head), "");
}

TEST_F(StatsServerTest, ProfilesMissingIdIs404WithBody) {
  // A well-formed id that the recorder has never retained (ids start at 1,
  // so 0 can never exist; the huge id outlives any test's recording) must
  // produce a proper 404 response, not an empty 200 or a crash.
  for (const char* target : {"/profiles/0", "/profiles/18446744073709551615"}) {
    std::string resp = HttpGet(server_->port(), target);
    EXPECT_NE(resp.find("HTTP/1.1 404 Not Found"), std::string::npos)
        << target << ": " << resp;
    EXPECT_EQ(Body(resp), "profile not retained\n") << target;
  }
}

TEST_F(StatsServerTest, MetricsEndpointServesPrometheusText) {
  obs::EnabledScope on(true);
  obs::MetricsRegistry::Global().Reset();
  obs::MetricsRegistry::Global().GetCounter("statcube.test.http").Add(5);
  obs::MetricsRegistry::Global()
      .GetHistogram("statcube.test.http_lat", {10, 100})
      .Observe(42);

  std::string resp = HttpGet(server_->port(), "/metrics");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  std::string body = Body(resp);
  EXPECT_NE(body.find("statcube_test_http 5"), std::string::npos) << body;
  EXPECT_NE(body.find("statcube_test_http_lat_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  obs::MetricsRegistry::Global().Reset();
}

TEST_F(StatsServerTest, VarzIsValidJson) {
  std::string body = Body(HttpGet(server_->port(), "/varz"));
  EXPECT_TRUE(JsonChecker(body).Valid()) << body;
  EXPECT_NE(body.find("\"uptime_s\""), std::string::npos);
  EXPECT_NE(body.find("\"metrics\""), std::string::npos);
}

TEST_F(StatsServerTest, ProfilesEndpointsServeTheGlobalRecorder) {
  // Feed the global recorder through the real query path.
  RetailOptions ropt;
  ropt.num_products = 6;
  ropt.num_stores = 4;
  ropt.num_cities = 2;
  ropt.num_days = 5;
  ropt.num_rows = 500;
  auto data = MakeRetailWorkload(ropt);
  ASSERT_TRUE(data.ok());
  auto r = QueryProfiled(data->object, "SELECT sum(amount) BY city");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->profile_id, 0u);

  std::string body = Body(HttpGet(server_->port(), "/profiles"));
  EXPECT_TRUE(JsonChecker(body).Valid()) << body;
  EXPECT_NE(body.find("\"id\":" + std::to_string(r->profile_id)),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("SELECT sum(amount) BY city"), std::string::npos);

  // Single-profile endpoint round-trips; bad ids are 400/404.
  std::string one = Body(HttpGet(
      server_->port(), "/profiles/" + std::to_string(r->profile_id)));
  EXPECT_TRUE(JsonChecker(one).Valid()) << one;
  EXPECT_NE(one.find("\"backend\":"), std::string::npos);
  EXPECT_NE(HttpGet(server_->port(), "/profiles/999999999").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(server_->port(), "/profiles/abc").find("400"),
            std::string::npos);

  // limit=1 returns exactly the newest entry.
  std::string limited = Body(HttpGet(server_->port(), "/profiles?limit=1"));
  EXPECT_TRUE(JsonChecker(limited).Valid());
  size_t first = limited.find("\"id\":");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(limited.find("\"id\":", first + 1), std::string::npos)
      << "more than one profile with limit=1: " << limited;
}

TEST(StatsServerLifecycleTest, StopIsIdempotentAndPortRefusesAfterStop) {
  obs::StatsServerOptions opt;
  opt.port = 0;
  auto server = std::make_unique<obs::StatsServer>(opt);
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();
  EXPECT_NE(HttpGet(port, "/healthz").find("200"), std::string::npos);
  server->Stop();
  server->Stop();  // idempotent
  EXPECT_EQ(HttpGet(port, "/healthz"), "");  // connection refused
  // A second server can immediately rebind (SO_REUSEADDR) the same port.
  obs::StatsServerOptions opt2;
  opt2.port = port;
  obs::StatsServer second(opt2);
  auto s = second.Start();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(HttpGet(port, "/healthz").find("200"), std::string::npos);
  second.Stop();
}

TEST(StatsServerLifecycleTest, PortCollisionReportsError) {
  obs::StatsServerOptions opt;
  opt.port = 0;
  obs::StatsServer first(opt);
  ASSERT_TRUE(first.Start().ok());
  obs::StatsServerOptions opt2;
  opt2.port = first.port();
  obs::StatsServer second(opt2);
  EXPECT_FALSE(second.Start().ok());
  first.Stop();
}

}  // namespace
}  // namespace statcube
