// Tests for the materialization lattice, greedy/optimal view selection
// ([HUR96], Figure 22), and the materialized view store.

#include <gtest/gtest.h>

#include "statcube/common/rng.h"
#include "statcube/materialize/greedy.h"
#include "statcube/materialize/lattice.h"
#include "statcube/materialize/view_store.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_profile.h"

namespace statcube {
namespace {

// The paper's Figure 22 example: product, location, day.
Lattice MakeFigure22() {
  // Sizes chosen with the usual asymmetry: |product x location x day| = 6M,
  // |product x location| = 0.8M, etc.
  std::vector<uint64_t> sizes(8);
  // bit0 = product, bit1 = location, bit2 = day
  sizes[0b000] = 1;
  sizes[0b001] = 2000;      // product
  sizes[0b010] = 100;       // location
  sizes[0b100] = 365;       // day
  sizes[0b011] = 200000;    // product, location
  sizes[0b101] = 730000;    // product, day
  sizes[0b110] = 36500;     // location, day
  sizes[0b111] = 6000000;   // product, location, day
  return Lattice({"product", "location", "day"}, std::move(sizes));
}

TEST(LatticeTest, Derivability) {
  // location derivable from {location, day} and {product, location}.
  EXPECT_TRUE(Lattice::DerivableFrom(0b010, 0b110));
  EXPECT_TRUE(Lattice::DerivableFrom(0b010, 0b011));
  EXPECT_FALSE(Lattice::DerivableFrom(0b011, 0b110));
  EXPECT_TRUE(Lattice::DerivableFrom(0b000, 0b001));
}

TEST(LatticeTest, CostModel) {
  Lattice l = MakeFigure22();
  // With nothing extra materialized, every query costs |top|.
  EXPECT_EQ(l.QueryCost(0b010, {}), 6000000u);
  EXPECT_EQ(l.TotalCost({}), 8u * 6000000);
  // Materializing {product, location} answers 4 views at 200000.
  std::vector<uint32_t> m = {0b011};
  EXPECT_EQ(l.QueryCost(0b010, m), 200000u);
  EXPECT_EQ(l.QueryCost(0b011, m), 200000u);
  EXPECT_EQ(l.QueryCost(0b110, m), 6000000u);  // not derivable
  EXPECT_EQ(l.TotalCost(m), 4u * 200000 + 4u * 6000000);
  EXPECT_EQ(l.Benefit(m), 4u * (6000000 - 200000));
}

TEST(LatticeTest, ViewNames) {
  Lattice l = MakeFigure22();
  EXPECT_EQ(l.ViewName(0b011), "{product, location}");
  EXPECT_EQ(l.ViewName(0), "{()}");
}

TEST(LatticeTest, FromTableCountsDistinct) {
  Schema s;
  s.AddColumn("a", ValueType::kString);
  s.AddColumn("b", ValueType::kString);
  Table t("t", s);
  t.AppendRowUnchecked({Value("a1"), Value("b1")});
  t.AppendRowUnchecked({Value("a1"), Value("b2")});
  t.AppendRowUnchecked({Value("a2"), Value("b1")});
  t.AppendRowUnchecked({Value("a2"), Value("b1")});  // duplicate
  auto l = Lattice::FromTable(t, {"a", "b"});
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->size(0b00), 1u);
  EXPECT_EQ(l->size(0b01), 2u);  // a
  EXPECT_EQ(l->size(0b10), 2u);  // b
  EXPECT_EQ(l->size(0b11), 3u);  // distinct pairs
}

TEST(LatticeTest, FromCardinalitiesCapsAtRows) {
  Lattice l = Lattice::FromCardinalities({"a", "b"}, {1000, 1000}, 5000);
  EXPECT_EQ(l.size(0b11), 5000u);  // capped
  EXPECT_EQ(l.size(0b01), 1000u);
}

TEST(GreedyTest, PicksHighBenefitViewsFirst) {
  Lattice l = MakeFigure22();
  ViewSelection sel = GreedySelect(l, 2);
  ASSERT_EQ(sel.views.size(), 2u);
  // {location, day} (36.5k rows) covers 4 views nearly for free: benefit
  // 4*(6M - 36.5k) beats {product, location}'s 4*(6M - 200k).
  EXPECT_EQ(sel.views[0], 0b110u);
  // Second pick: {product, location} covers the remaining {product} and
  // {product, location} queries.
  EXPECT_EQ(sel.views[1], 0b011u);
  EXPECT_GT(sel.benefit, 0u);
  EXPECT_EQ(sel.total_cost, l.TotalCost(sel.views));
  // Greedy matches the exhaustive optimum here.
  auto opt = OptimalSelect(l, 2);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(sel.benefit, opt->benefit);
}

TEST(GreedyTest, MatchesOptimalOnSmallLattices) {
  // Randomized small lattices: the greedy solution must reach at least
  // (1 - 1/e) of the optimal benefit; on most instances it is optimal.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 3;
    std::vector<uint64_t> sizes(1u << n);
    sizes[(1u << n) - 1] = 100000 + rng.Uniform(1000000);
    for (uint32_t m = 0; m + 1 < (1u << n); ++m)
      sizes[m] = 1 + rng.Uniform(sizes[(1u << n) - 1]);
    sizes[0] = 1;
    Lattice l({"a", "b", "c"}, sizes);
    for (size_t k = 1; k <= 3; ++k) {
      ViewSelection g = GreedySelect(l, k);
      auto o = OptimalSelect(l, k);
      ASSERT_TRUE(o.ok());
      EXPECT_GE(double(g.benefit), (1.0 - 1.0 / 2.71828) * double(o->benefit))
          << "trial " << trial << " k " << k;
      EXPECT_LE(g.benefit, o->benefit);
    }
  }
}

TEST(GreedyTest, BudgetedSelectionRespectsBudget) {
  Lattice l = MakeFigure22();
  ViewSelection sel = GreedySelectWithBudget(l, 250000);
  EXPECT_LE(sel.space_rows, 250000u);
  // Benefit-per-row favors the tiny views first: the grand total (1 row,
  // ~6M benefit) then {location} / {day} / {location, day}.
  ASSERT_FALSE(sel.views.empty());
  EXPECT_EQ(sel.views[0], 0b000u);
  // The budget admits {location, day} and more; cost must strictly improve.
  EXPECT_LT(sel.total_cost, l.TotalCost({}));
  // Zero budget picks nothing.
  EXPECT_TRUE(GreedySelectWithBudget(l, 0).views.empty());
}

// ------------------------------------------------------------- view store

Table MakeBase(int n, uint64_t seed) {
  Schema s;
  s.AddColumn("product", ValueType::kString);
  s.AddColumn("location", ValueType::kString);
  s.AddColumn("day", ValueType::kString);
  s.AddColumn("sales", ValueType::kInt64);
  Table t("base", s);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    t.AppendRowUnchecked({Value("p" + std::to_string(rng.Uniform(20))),
                          Value("l" + std::to_string(rng.Uniform(5))),
                          Value("d" + std::to_string(rng.Uniform(30))),
                          Value(int64_t(rng.Uniform(100)))});
  }
  return t;
}

TEST(ViewStoreTest, QueriesAnswerFromBaseWithoutViews) {
  auto store = MaterializedCubeStore::Create(
      MakeBase(3000, 5), {"product", "location", "day"},
      {{AggFn::kSum, "sales", "total"}});
  ASSERT_TRUE(store.ok());
  auto q = store->Query(0b001);  // by product
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(store->last_rows_scanned(), 3000u);
  EXPECT_EQ(q->num_rows(), 20u);
}

TEST(ViewStoreTest, MaterializedViewCutsScanCost) {
  Table base = MakeBase(3000, 6);
  auto store = MaterializedCubeStore::Create(
      base, {"product", "location", "day"}, {{AggFn::kSum, "sales", "total"}});
  ASSERT_TRUE(store.ok());
  // Materialize {product, location}: at most 100 rows.
  ASSERT_TRUE(store->Materialize(0b011).ok());
  auto q = store->Query(0b001);
  ASSERT_TRUE(q.ok());
  EXPECT_LE(store->last_rows_scanned(), 100u);
  // Results equal direct computation from the base.
  auto direct = GroupBy(base, {"product"}, {{AggFn::kSum, "sales", "total"}});
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(q->num_rows(), direct->num_rows());
  for (size_t r = 0; r < q->num_rows(); ++r) {
    EXPECT_EQ(q->at(r, 0), direct->at(r, 0));
    EXPECT_DOUBLE_EQ(q->at(r, 1).AsDouble(), direct->at(r, 1).AsDouble());
  }
}

TEST(ViewStoreTest, AnswersEveryMaskCorrectly) {
  Table base = MakeBase(1000, 7);
  auto store = MaterializedCubeStore::Create(
      base, {"product", "location", "day"},
      {{AggFn::kSum, "sales", "total"}, {AggFn::kCountAll, "", "n"}});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Materialize(0b111).ok());
  ASSERT_TRUE(store->Materialize(0b011).ok());
  ASSERT_TRUE(store->Materialize(0b100).ok());
  for (uint32_t mask = 0; mask < 8; ++mask) {
    auto q = store->Query(mask);
    ASSERT_TRUE(q.ok()) << mask;
    std::vector<std::string> dims;
    for (size_t d = 0; d < 3; ++d)
      if (mask & (1u << d))
        dims.push_back(std::vector<std::string>{"product", "location",
                                                "day"}[d]);
    auto direct = GroupBy(base, dims,
                          {{AggFn::kSum, "sales", "total"},
                           {AggFn::kCountAll, "", "n"}});
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(q->num_rows(), direct->num_rows()) << mask;
    for (size_t r = 0; r < q->num_rows(); ++r)
      for (size_t c = 0; c < q->num_columns(); ++c) {
        if (q->at(r, c).is_numeric()) {
          EXPECT_DOUBLE_EQ(q->at(r, c).AsDouble(),
                           direct->at(r, c).AsDouble());
        } else {
          EXPECT_EQ(q->at(r, c), direct->at(r, c));
        }
      }
  }
}

TEST(ViewStoreTest, RejectsNonDistributiveAggregates) {
  auto store = MaterializedCubeStore::Create(
      MakeBase(10, 8), {"product"}, {{AggFn::kAvg, "sales", "avg"}});
  EXPECT_FALSE(store.ok());
}

TEST(ViewStoreTest, ValidatesMasks) {
  auto store = MaterializedCubeStore::Create(MakeBase(10, 9), {"product"},
                                             {{AggFn::kSum, "sales", "t"}});
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->Materialize(99).ok());
  EXPECT_FALSE(store->Query(99).ok());
}

TEST(ViewStoreTest, ObservabilityCountsHitsMissesAndRefreshRows) {
  obs::EnabledScope on(true);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Reset();

  auto store = MaterializedCubeStore::Create(
      MakeBase(1000, 11), {"product", "location", "day"},
      {{AggFn::kSum, "sales", "total"}});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Materialize(0b011).ok());

  obs::ProfileScope scope;
  ASSERT_TRUE(store->Query(0b011).ok());  // exact view: hit
  ASSERT_TRUE(store->Query(0b001).ok());  // from {product, location}: miss
  ASSERT_TRUE(store->Query(0b100).ok());  // not derivable: miss, from base
  obs::QueryProfile p = scope.Take();

  EXPECT_EQ(reg.GetCounter("statcube.viewstore.hits").Value(), 1u);
  EXPECT_EQ(reg.GetCounter("statcube.viewstore.misses").Value(), 2u);
  EXPECT_EQ(p.view_hits, 1u);
  EXPECT_EQ(p.view_misses, 2u);
  ASSERT_EQ(p.view_events.size(), 3u);
  EXPECT_TRUE(p.view_events[0].hit);
  EXPECT_EQ(p.view_events[1].ancestor_mask, 0b011);
  EXPECT_EQ(p.view_events[2].ancestor_mask, -1);  // base table

  // Incremental refresh reports re-aggregated rows.
  std::vector<Row> delta = {{Value("p1"), Value("l1"), Value("d1"),
                             Value(int64_t(5))}};
  auto reagg = store->AppendAndRefresh(delta);
  ASSERT_TRUE(reagg.ok());
  EXPECT_EQ(reg.GetCounter("statcube.viewstore.reagg_rows").Value(), *reagg);

  // The JSON snapshot carries the counters (acceptance criterion).
  std::string json = reg.JsonSnapshot();
  EXPECT_NE(json.find("\"statcube.viewstore.hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"statcube.viewstore.misses\":2"), std::string::npos);
}

}  // namespace
}  // namespace statcube
