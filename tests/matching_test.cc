// Tests for classification matching (paper §5.7, Figure 17) and
// disaggregation by proxy (§5.3).

#include "statcube/matching/matching.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

TEST(RefineTest, IdentityOnMatchingBoundaries) {
  std::vector<IntervalBucket> src = {{0, 5, 50}, {5, 10, 100}};
  auto r = RefineToBoundaries(src, {0, 5, 10});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ((*r)[0].value, 50);
  EXPECT_DOUBLE_EQ((*r)[1].value, 100);
}

TEST(RefineTest, SplitsProportionally) {
  std::vector<IntervalBucket> src = {{0, 10, 100}};
  auto r = RefineToBoundaries(src, {0, 2, 10});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].value, 20);  // 2/10 of 100
  EXPECT_DOUBLE_EQ((*r)[1].value, 80);
}

TEST(RefineTest, PreservesTotals) {
  std::vector<IntervalBucket> src = {{0, 5, 37}, {5, 10, 12}, {10, 30, 99}};
  auto r = RefineToBoundaries(src, {0, 1, 4, 9, 13, 30});
  ASSERT_TRUE(r.ok());
  double total = 0;
  for (const auto& b : *r) total += b.value;
  EXPECT_NEAR(total, 37 + 12 + 99, 1e-9);
}

TEST(RefineTest, Validation) {
  std::vector<IntervalBucket> src = {{0, 10, 1}};
  EXPECT_FALSE(RefineToBoundaries(src, {0}).ok());
  EXPECT_FALSE(RefineToBoundaries(src, {10, 0}).ok());
  EXPECT_FALSE(RefineToBoundaries(src, {2, 10}).ok());  // doesn't cover
  EXPECT_FALSE(RefineToBoundaries({{5, 5, 1}}, {0, 10}).ok());
}

TEST(MergeTest, Figure17AgeGroups) {
  // Database 1: 0-5, 6-10(as 5-10)... use half-open [0,5),[5,10),[10,15),
  // [15,20). Database 2: [0,1),[1,10),[10,20).
  std::vector<IntervalBucket> db1 = {
      {0, 5, 50}, {5, 10, 60}, {10, 15, 70}, {15, 20, 80}};
  std::vector<IntervalBucket> db2 = {{0, 1, 9}, {1, 10, 81}, {10, 20, 110}};
  auto merged = MergeIntervalSources(db1, db2);
  ASSERT_TRUE(merged.ok());
  // Combined boundaries: 0,1,5,10,15,20.
  ASSERT_EQ(merged->size(), 5u);
  double total = 0;
  for (const auto& b : *merged) total += b.value;
  EXPECT_NEAR(total, 50 + 60 + 70 + 80 + 9 + 81 + 110, 1e-9);
  // First bucket [0,1): db1 contributes 50/5, db2 contributes 9.
  EXPECT_NEAR((*merged)[0].value, 10 + 9, 1e-9);
}

TEST(CategoryTimelineTest, Figure17Industries) {
  CategoryTimeline tl;
  ASSERT_TRUE(tl.AddVersion("1990", {Value("agriculture"),
                                     Value("automobiles")})
                  .ok());
  ASSERT_TRUE(tl.AddVersion("1991", {Value("agriculture"),
                                     Value("automobiles"), Value("internet")})
                  .ok());
  auto added = tl.Added("1990", "1991");
  ASSERT_TRUE(added.ok());
  ASSERT_EQ(added->size(), 1u);
  EXPECT_EQ((*added)[0], Value("internet"));
  auto removed = tl.Removed("1990", "1991");
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed->empty());
  // Surviving categories map by identity.
  auto m = tl.Map("1990", Value("agriculture"), "1991");
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->size(), 1u);
  EXPECT_EQ((*m)[0], Value("agriculture"));
  // New categories have no backward mapping.
  EXPECT_FALSE(tl.Map("1991", Value("internet"), "1990").ok());
}

TEST(CategoryTimelineTest, ExplicitSplitMapping) {
  CategoryTimeline tl;
  ASSERT_TRUE(tl.AddVersion("v1", {Value("tech")}).ok());
  ASSERT_TRUE(
      tl.AddVersion("v2", {Value("hardware"), Value("software")}).ok());
  // Without a declared mapping, "tech" is unmappable.
  EXPECT_FALSE(tl.Map("v1", Value("tech"), "v2").ok());
  ASSERT_TRUE(tl.DeclareMapping("v1", Value("tech"), "v2",
                                {Value("hardware"), Value("software")})
                  .ok());
  auto m = tl.Map("v1", Value("tech"), "v2");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 2u);
  // Mapping to a non-category is rejected.
  EXPECT_FALSE(
      tl.DeclareMapping("v1", Value("tech"), "v2", {Value("ghost")}).ok());
}

TEST(CategoryTimelineTest, Validation) {
  CategoryTimeline tl;
  ASSERT_TRUE(tl.AddVersion("a", {Value("x")}).ok());
  EXPECT_FALSE(tl.AddVersion("a", {}).ok());
  EXPECT_FALSE(tl.Map("ghost", Value("x"), "a").ok());
  EXPECT_FALSE(tl.Map("a", Value("ghost"), "a").ok());
}

TEST(ProxyTest, PaperExampleAreaProxy) {
  // Population known per state; county areas as proxy.
  std::map<Value, double> totals = {{Value("CA"), 1000.0}};
  std::vector<ProxyChild> counties = {
      {Value("co1"), Value("CA"), 30.0},
      {Value("co2"), Value("CA"), 70.0},
  };
  auto est = DisaggregateByProxy(totals, counties);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(Value("co1")), 300.0);
  EXPECT_DOUBLE_EQ(est->at(Value("co2")), 700.0);
}

TEST(ProxyTest, MultipleParentsAndValidation) {
  std::map<Value, double> totals = {{Value("CA"), 100.0},
                                    {Value("NV"), 10.0}};
  std::vector<ProxyChild> children = {
      {Value("c1"), Value("CA"), 1.0},
      {Value("c2"), Value("CA"), 3.0},
      {Value("n1"), Value("NV"), 2.0},
  };
  auto est = DisaggregateByProxy(totals, children);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(Value("c1")), 25.0);
  EXPECT_DOUBLE_EQ(est->at(Value("c2")), 75.0);
  EXPECT_DOUBLE_EQ(est->at(Value("n1")), 10.0);

  EXPECT_FALSE(
      DisaggregateByProxy(totals, {{Value("x"), Value("TX"), 1.0}}).ok());
  EXPECT_FALSE(
      DisaggregateByProxy(totals, {{Value("x"), Value("CA"), -1.0}}).ok());
  EXPECT_FALSE(
      DisaggregateByProxy(totals, {{Value("x"), Value("CA"), 0.0}}).ok());
}

}  // namespace
}  // namespace statcube
