// Tests for the [OOM85] summary-table layout operators (paper §5.2):
// attribute split/merge between rows and columns, transposition, reordering,
// and the multi-table split/merge ("pages").

#include "statcube/core/layout.h"

#include <gtest/gtest.h>

namespace statcube {
namespace {

StatisticalObject MakeObject() {
  StatisticalObject obj("emp");
  EXPECT_TRUE(obj.AddDimension(Dimension("state")).ok());
  EXPECT_TRUE(obj.AddDimension(Dimension("sex")).ok());
  EXPECT_TRUE(obj.AddDimension(Dimension("year", DimensionKind::kTemporal)).ok());
  EXPECT_TRUE(
      obj.AddMeasure({"pop", "", MeasureType::kStock, AggFn::kSum, ""}).ok());
  int v = 0;
  for (const char* st : {"CA", "NV"})
    for (const char* sex : {"M", "F"})
      for (int y : {1990, 1991})
        EXPECT_TRUE(
            obj.AddCell({Value(st), Value(sex), Value(y)}, {Value(v += 5)})
                .ok());
  return obj;
}

TEST(Layout2DTest, CreateValidates) {
  auto obj = MakeObject();
  EXPECT_TRUE(Layout2D::Create(obj, {"state", "sex"}, {"year"}).ok());
  // Missing a dimension.
  EXPECT_FALSE(Layout2D::Create(obj, {"state"}, {"year"}).ok());
  // Duplicate.
  EXPECT_FALSE(Layout2D::Create(obj, {"state", "sex"}, {"sex"}).ok());
  // Empty side.
  EXPECT_FALSE(Layout2D::Create(obj, {}, {"state", "sex", "year"}).ok());
}

TEST(Layout2DTest, AttributeSplitAndMerge) {
  auto obj = MakeObject();
  auto layout = Layout2D::Create(obj, {"state"}, {"sex", "year"});
  ASSERT_TRUE(layout.ok());
  // Move "sex" to the rows (attribute split).
  ASSERT_TRUE(layout->MoveToRows("sex").ok());
  EXPECT_EQ(layout->row_dims(),
            (std::vector<std::string>{"state", "sex"}));
  EXPECT_EQ(layout->col_dims(), (std::vector<std::string>{"year"}));
  // Cannot empty the columns.
  EXPECT_FALSE(layout->MoveToRows("year").ok());
  // Move back (attribute merge).
  ASSERT_TRUE(layout->MoveToColumns("sex").ok());
  EXPECT_EQ(layout->col_dims(),
            (std::vector<std::string>{"year", "sex"}));
  // Not present.
  EXPECT_FALSE(layout->MoveToColumns("sex").ok());
}

TEST(Layout2DTest, TransposeAndReorder) {
  auto obj = MakeObject();
  auto layout = Layout2D::Create(obj, {"state", "sex"}, {"year"});
  ASSERT_TRUE(layout.ok());
  layout->Transpose();
  EXPECT_EQ(layout->row_dims(), (std::vector<std::string>{"year"}));
  EXPECT_EQ(layout->col_dims(), (std::vector<std::string>{"state", "sex"}));
  ASSERT_TRUE(layout->ReorderColumns({"sex", "state"}).ok());
  EXPECT_EQ(layout->col_dims(), (std::vector<std::string>{"sex", "state"}));
  EXPECT_FALSE(layout->ReorderColumns({"sex"}).ok());
  EXPECT_FALSE(layout->ReorderColumns({"sex", "year"}).ok());
}

TEST(Layout2DTest, RenderProducesEquivalentContentUnderAnyLayout) {
  auto obj = MakeObject();
  auto l1 = Layout2D::Create(obj, {"state", "sex"}, {"year"});
  ASSERT_TRUE(l1.ok());
  auto r1 = l1->Render(obj, "pop", true);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto l2 = *l1;
  l2.Transpose();
  auto r2 = l2.Render(obj, "pop", true);
  ASSERT_TRUE(r2.ok());
  // Same grand total appears in both renderings (sum of 5..40 step 5 = 180).
  EXPECT_NE(r1->find("180"), std::string::npos);
  EXPECT_NE(r2->find("180"), std::string::npos);
}

TEST(SplitMergeTest, SplitProducesOnePagePerValue) {
  auto obj = MakeObject();
  auto pages = SplitByValue(obj, "state");
  ASSERT_TRUE(pages.ok());
  ASSERT_EQ(pages->size(), 2u);
  const auto& ca = pages->at(Value("CA"));
  EXPECT_EQ(ca.dimensions().size(), 2u);
  EXPECT_EQ(ca.data().num_rows(), 4u);
  EXPECT_FALSE(ca.data().schema().Contains("state"));
}

TEST(SplitMergeTest, MergeInvertsSplit) {
  auto obj = MakeObject();
  auto pages = SplitByValue(obj, "state");
  ASSERT_TRUE(pages.ok());
  auto merged = MergeByValue(*pages, "state");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->data().num_rows(), obj.data().num_rows());
  // Cell totals preserved.
  double t1 = 0, t2 = 0;
  size_t p1 = *obj.data().schema().IndexOf("pop");
  size_t p2 = *merged->data().schema().IndexOf("pop");
  for (const Row& r : obj.data().rows()) t1 += r[p1].AsDouble();
  for (const Row& r : merged->data().rows()) t2 += r[p2].AsDouble();
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(SplitMergeTest, Validation) {
  auto obj = MakeObject();
  EXPECT_FALSE(SplitByValue(obj, "ghost").ok());
  StatisticalObject tiny("t");
  ASSERT_TRUE(tiny.AddDimension(Dimension("only")).ok());
  ASSERT_TRUE(
      tiny.AddMeasure({"m", "", MeasureType::kFlow, AggFn::kSum, ""}).ok());
  ASSERT_TRUE(tiny.AddCell({Value("x")}, {Value(1)}).ok());
  EXPECT_FALSE(SplitByValue(tiny, "only").ok());
  EXPECT_FALSE(MergeByValue({}, "d").ok());
}

}  // namespace
}  // namespace statcube
