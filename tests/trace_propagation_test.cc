// Cross-thread trace propagation and per-query resource attribution
// (observability v2): tasks and morsels executed by pool workers must
// attach their spans under the submitting query's span tree (one tree, not
// one per thread), record which worker ran them, charge the query's
// ResourceAccumulator from whatever thread did the work, and stay bounded
// by the trace's span budget. Results must remain bit-identical at any
// thread count with full profiling on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "statcube/exec/task_scheduler.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/query_profile.h"
#include "statcube/obs/resource.h"
#include "statcube/obs/trace.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

using exec::ParallelFor;
using exec::ParallelForOptions;
using exec::TaskGroup;
using exec::TaskScheduler;

// Walks parent links from span `i` to a root; returns the root index or -1
// on a broken link. Every link must strictly decrease (spans are appended
// after their parent is opened), so this terminates.
int32_t RootOf(const std::vector<obs::SpanRecord>& spans, int32_t i) {
  while (spans[size_t(i)].parent != -1) {
    int32_t p = spans[size_t(i)].parent;
    if (p < 0 || p >= i) return -1;
    i = p;
  }
  return i;
}

// ------------------------------------------------ TaskGroup propagation

TEST(TracePropagationTest, WorkerTaskSpansParentUnderSubmittingSpan) {
  obs::EnabledScope on(true);
  obs::TraceScope scope;
  TaskScheduler pool(4);

  // A barrier forces the four tasks to be in flight simultaneously, so each
  // must run on a distinct thread (workers, or the main thread helping in
  // Wait) — guaranteeing genuinely cross-thread span recording.
  {
    obs::Span fanout("fanout");
    TaskGroup group(&pool);
    std::atomic<int> arrived{0};
    for (int i = 0; i < 4; ++i) {
      group.Run([&arrived] {
        obs::Span s("task");
        arrived.fetch_add(1, std::memory_order_acq_rel);
        while (arrived.load(std::memory_order_acquire) < 4)
          std::this_thread::yield();
      });
    }
    group.Wait();
  }

  const std::vector<obs::SpanRecord>& spans = scope.trace().spans();
  int32_t fanout_idx = -1;
  for (size_t i = 0; i < spans.size(); ++i)
    if (spans[i].name == "fanout") fanout_idx = int32_t(i);
  ASSERT_NE(fanout_idx, -1);

  std::set<uint32_t> task_threads;
  size_t tasks = 0;
  for (const obs::SpanRecord& s : spans) {
    EXPECT_FALSE(s.open) << s.name;
    if (s.name == "task") {
      ++tasks;
      EXPECT_EQ(s.parent, fanout_idx)
          << "worker span not parented under the submitting span";
      task_threads.insert(s.thread_id);
    }
  }
  EXPECT_EQ(tasks, 4u);
  // All four were simultaneously in the barrier, so four distinct threads.
  EXPECT_EQ(task_threads.size(), 4u);
}

// --------------------------------------------- ParallelFor under a query

TEST(TracePropagationTest, MorselSpansFormOneTreeAndMatchResources) {
  obs::EnabledScope on(true);
  obs::QueryProfile profile;
  {
    obs::ProfileScope scope;
    TaskScheduler pool(4);
    ParallelForOptions opt;
    opt.scheduler = &pool;
    opt.morsel_size = 16;
    opt.max_workers = 4;
    // 8 morsels of ~2ms each: long enough that per-morsel CPU charges are
    // well above clock granularity, so the span/resource cross-check below
    // is meaningful even under sanitizers.
    ParallelFor(128,
                [](size_t, size_t, size_t) {
                  // Simulated morsel work. statcube-lint: allow(sleep)
                  std::this_thread::sleep_for(std::chrono::milliseconds(2));
                },
                opt);
    profile = scope.Take();
  }

  const std::vector<obs::SpanRecord>& spans = profile.trace.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, -1);

  uint64_t morsel_span_us = 0;
  size_t morsel_spans = 0;
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_FALSE(spans[i].open) << spans[i].name;
    // One tree: every span reaches the query root.
    EXPECT_EQ(RootOf(spans, int32_t(i)), 0) << spans[i].name;
    if (spans[i].name.rfind("parallel_for[", 0) == 0) {
      ++morsel_spans;
      morsel_span_us += spans[i].dur_ns / 1000;
    }
  }
  EXPECT_EQ(morsel_spans, 8u);

  const obs::ResourceVector& res = profile.resources;
  EXPECT_EQ(res.morsels, 8u);
  EXPECT_GT(res.tasks_spawned, 0u);
  EXPECT_GT(res.cpu_us, 0u);
  // Morsel spans are leaves, so their durations are self-time; the same
  // wall-clock windows are what RunMorsels charges as CPU. Generous bounds
  // absorb clock/overhead noise.
  EXPECT_GE(res.cpu_us, morsel_span_us / 2);
  EXPECT_LE(res.cpu_us, morsel_span_us * 2 + 1000);
  // The per-thread split never exceeds the aggregate, and ids are unique.
  uint64_t split = 0;
  std::set<uint32_t> ids;
  for (const auto& [tid, us] : res.cpu_us_by_thread) {
    split += us;
    EXPECT_TRUE(ids.insert(tid).second);
  }
  EXPECT_LE(split, res.cpu_us);
}

// ------------------------------------------------- end-to-end query path

class TraceQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = std::make_unique<RetailData>(*MakeRetailWorkload());
  }
  static void TearDownTestSuite() { data_.reset(); }
  static std::unique_ptr<RetailData> data_;
};

std::unique_ptr<RetailData> TraceQueryTest::data_;

TEST_F(TraceQueryTest, ParallelQueryProducesOneTraceWithWorkerResources) {
  QueryOptions opt;
  opt.threads = 4;
  opt.record = false;
  auto r = QueryProfiled(data_->object, "SELECT sum(amount) BY city", opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const std::vector<obs::SpanRecord>& spans = r->profile.trace.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "query");
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_FALSE(spans[i].open) << spans[i].name;
    EXPECT_EQ(RootOf(spans, int32_t(i)), 0)
        << spans[i].name << " detached from the query tree";
  }

  const obs::ResourceVector& res = r->profile.resources;
  EXPECT_FALSE(res.Empty());
  EXPECT_GT(res.morsels, 0u);       // 8000 rows / 2048 = several morsels
  EXPECT_GT(res.tasks_spawned, 0u);
  EXPECT_GT(res.bytes_touched, 0u);
  EXPECT_LE(res.steals, res.tasks_spawned);
  uint64_t split = 0;
  for (const auto& [tid, us] : res.cpu_us_by_thread) split += us;
  EXPECT_LE(split, res.cpu_us);

  // The report and JSON carry the new attribution.
  EXPECT_NE(r->profile.ToString().find("resources:"), std::string::npos);
  EXPECT_NE(r->profile.ToJson().find("\"resources\":"), std::string::npos);
}

TEST_F(TraceQueryTest, ResultsBitIdenticalAcrossThreadCountsWhileProfiled) {
  const char* queries[] = {
      "SELECT sum(amount) BY city",
      "SELECT sum(qty), avg(amount) BY category",
      "SELECT sum(amount) BY CUBE(city, month)",
  };
  for (const char* text : queries) {
    std::string baseline;
    for (int t : {1, 2, 4}) {
      QueryOptions opt;
      opt.threads = t;
      opt.record = false;
      auto r = QueryProfiled(data_->object, text, opt);
      ASSERT_TRUE(r.ok()) << text << ": " << r.status().ToString();
      if (t == 1) {
        baseline = r->rendered;
      } else {
        EXPECT_EQ(r->rendered, baseline) << text << " @" << t << " threads";
      }
    }
  }
}

// ----------------------------------------------------------- span budget

TEST(TracePropagationTest, SpanBudgetBoundsTraceAndCountsDrops) {
  obs::EnabledScope on(true);
  obs::TraceScope scope;
  scope.trace().set_span_budget(4);
  for (int i = 0; i < 10; ++i) obs::Span s("s" + std::to_string(i));
  EXPECT_EQ(scope.trace().spans().size(), 4u);
  EXPECT_EQ(scope.trace().dropped_spans(), 6u);
  // Refused spans are invisible to nesting: a child opened while the budget
  // is exhausted simply isn't recorded, and the tree stays printable.
  std::string tree = scope.trace().TreeString();
  EXPECT_NE(tree.find("dropped"), std::string::npos) << tree;
}

TEST(TracePropagationTest, SpanBudgetHoldsUnderParallelFanout) {
  obs::EnabledScope on(true);
  obs::QueryProfile profile;
  {
    obs::ProfileScope scope;
    obs::ActiveProfile()->trace.set_span_budget(8);
    TaskScheduler pool(4);
    ParallelForOptions opt;
    opt.scheduler = &pool;
    opt.morsel_size = 1;  // 64 morsels, far beyond the budget
    opt.max_workers = 4;
    ParallelFor(64, [](size_t, size_t, size_t) {}, opt);
    profile = scope.Take();
  }
  EXPECT_LE(profile.trace.spans().size(), 8u);
  EXPECT_GT(profile.trace.dropped_spans(), 0u);
  // Dropping spans must not drop attribution: every morsel still counted.
  EXPECT_EQ(profile.resources.morsels, 64u);
}

}  // namespace
}  // namespace statcube
