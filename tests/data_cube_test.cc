// Tests for the DataCube facade: chained operators, backend-routed
// aggregates, queries, automatic aggregation and rendering through one
// handle.

#include "statcube/olap/data_cube.h"

#include <gtest/gtest.h>

#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

DataCube MakeCube(BackendKind backend = BackendKind::kMolap) {
  RetailOptions opt;
  opt.num_products = 8;
  opt.num_stores = 4;
  opt.num_cities = 2;
  opt.num_days = 10;
  opt.num_rows = 1200;
  return DataCube(MakeRetailWorkload(opt)->object,
                  {.backend = backend, .enforce_summarizability = true});
}

TEST(DataCubeTest, DescribeAndBackendName) {
  DataCube cube = MakeCube();
  EXPECT_NE(cube.Describe().find("Summary measure: qty"), std::string::npos);
  EXPECT_EQ(cube.backend_name(), "(none)");  // lazy
  ASSERT_TRUE(cube.Sum("qty").ok());
  EXPECT_EQ(cube.backend_name(), "molap");
}

TEST(DataCubeTest, SumAgreesAcrossBackends) {
  DataCube molap = MakeCube(BackendKind::kMolap);
  DataCube rolap = MakeCube(BackendKind::kRolap);
  DataCube bitmap = MakeCube(BackendKind::kRolapBitmap);
  std::vector<EqFilter> f = {{"product", Value("prod1")}};
  auto a = molap.Sum("amount", f);
  auto b = rolap.Sum("amount", f);
  auto c = bitmap.Sum("amount", f);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NEAR(*a, *b, 1e-6);
  EXPECT_NEAR(*a, *c, 1e-6);
  EXPECT_EQ(rolap.backend_name(), "rolap");
  EXPECT_EQ(bitmap.backend_name(), "rolap+bitmap");
}

TEST(DataCubeTest, ChainedPipeline) {
  DataCube cube = MakeCube();
  // Roll stores up to cities, keep city0, summarize days away.
  auto city = cube.RollUp("store", "by_city");
  ASSERT_TRUE(city.ok()) << city.status().ToString();
  auto only0 = city->SliceAt("city", Value("city0"));
  ASSERT_TRUE(only0.ok());
  auto no_days = only0->Slice("day");
  ASSERT_TRUE(no_days.ok()) << no_days.status().ToString();
  EXPECT_EQ(no_days->object().dimensions().size(), 2u);
  // Grand total of the pipeline equals a filtered Sum on the original.
  DataCube fresh = MakeCube();
  auto total = Query(no_days->object(), "SELECT sum(qty)");
  ASSERT_TRUE(total.ok());
  auto per_city = fresh.object();
  double expect = 0;
  size_t si = *per_city.data().schema().IndexOf("store");
  size_t qi = *per_city.data().schema().IndexOf("qty");
  for (const Row& r : per_city.data().rows())
    if (r[si].AsString().rfind("city0", 0) == 0) expect += r[qi].AsDouble();
  EXPECT_NEAR(total->at(0, 0).AsDouble(), expect, 1e-6);
}

TEST(DataCubeTest, EnforcementFlowsThroughOptions) {
  RetailOptions opt;
  opt.num_rows = 200;
  StatisticalObject obj = MakeRetailWorkload(opt)->object;
  // Make qty a stock measure so projecting over days is illegal.
  StatisticalObject stocky("s");
  (void)stocky.AddDimension(Dimension("day", DimensionKind::kTemporal));
  (void)stocky.AddDimension(Dimension("x"));
  (void)stocky.AddMeasure({"level", "", MeasureType::kStock, AggFn::kSum, ""});
  (void)stocky.AddCell({Value("d1"), Value("x1")}, {Value(1)});

  DataCube strict(stocky, {.enforce_summarizability = true});
  EXPECT_EQ(strict.Slice("day").status().code(),
            StatusCode::kNotSummarizable);
  DataCube loose(stocky, {.enforce_summarizability = false});
  EXPECT_TRUE(loose.Slice("day").ok());
}

TEST(DataCubeTest, QueryAskRender) {
  DataCube cube = MakeCube();
  auto q = Query(cube.object(), "SELECT sum(amount) BY city");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_rows(), 2u);

  AutoQuery ask;
  ask.selections = {{"category", Value("cat1")}};
  ask.measure = "qty";
  auto a = cube.Ask(ask);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(a->value.is_numeric() || a->value.is_null());

  Render2DOptions ropt;
  ropt.row_dims = {"store"};
  ropt.col_dims = {"day"};
  ropt.measure = "qty";
  auto r = cube.Render(ropt);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->find("store"), std::string::npos);
}

TEST(DataCubeTest, UnionOfPages) {
  DataCube cube = MakeCube();
  auto a = cube.Select("store", {Value("city0/s#0")});
  auto b = cube.Select("store", {Value("city1/s#0")});
  ASSERT_TRUE(a.ok() && b.ok());
  auto u = a->Union(*b);
  ASSERT_TRUE(u.ok());
  // SUnion consolidates duplicate coordinates (the raw retail object holds
  // one cell per transaction); the union holds the distinct coordinates of
  // both pages, which are disjoint by construction.
  auto ca = Consolidate(a->object());
  auto cb = Consolidate(b->object());
  ASSERT_TRUE(ca.ok() && cb.ok());
  EXPECT_EQ(u->object().data().num_rows(),
            ca->data().num_rows() + cb->data().num_rows());
  // And the measure totals are conserved.
  auto total = [](const StatisticalObject& o) {
    size_t qi = *o.data().schema().IndexOf("qty");
    double t = 0;
    for (const Row& r : o.data().rows()) t += r[qi].AsDouble();
    return t;
  };
  EXPECT_NEAR(total(u->object()),
              total(a->object()) + total(b->object()), 1e-6);
}

}  // namespace
}  // namespace statcube
