// Tests for the CSV + metadata interchange (§5.6 "clean interfaces").

#include "statcube/io/csv.h"

#include <gtest/gtest.h>

#include "statcube/olap/homomorphism.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

TEST(CsvTest, WritesAndReadsSimpleTable) {
  Schema s;
  s.AddColumn("name", ValueType::kString);
  s.AddColumn("n", ValueType::kInt64);
  s.AddColumn("x", ValueType::kDouble);
  Table t("t", s);
  t.AppendRowUnchecked({Value("plain"), Value(3), Value(1.5)});
  t.AppendRowUnchecked({Value("with,comma"), Value(-7), Value::Null()});
  t.AppendRowUnchecked({Value("with\"quote"), Value::All(), Value(2.0)});

  std::string csv = WriteCsv(t);
  auto back = ReadCsv(csv, "t");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 3u);
  ASSERT_EQ(back->num_columns(), 3u);
  EXPECT_EQ(back->at(0, 0), Value("plain"));
  EXPECT_EQ(back->at(0, 1), Value(3));
  EXPECT_EQ(back->at(1, 0), Value("with,comma"));
  EXPECT_EQ(back->at(1, 1), Value(-7));
  EXPECT_TRUE(back->at(1, 2).is_null());
  EXPECT_EQ(back->at(2, 0), Value("with\"quote"));
  EXPECT_TRUE(back->at(2, 1).is_all());
}

TEST(CsvTest, QuotedStringsStayStrings) {
  // "1996" the string must not come back as 1996 the number.
  Schema s;
  s.AddColumn("year_label", ValueType::kString);
  Table t("t", s);
  t.AppendRowUnchecked({Value("1996")});
  auto back = ReadCsv(WriteCsv(t), "t");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0, 0).type(), ValueType::kString);
  EXPECT_EQ(back->at(0, 0), Value("1996"));
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsv("", "t").ok());
  EXPECT_FALSE(ReadCsv("a,b\n1\n", "t").ok());           // arity mismatch
  EXPECT_FALSE(ReadCsv("a\n\"unterminated\n", "t").ok());
}

TEST(ExportImportTest, ObjectRoundTrip) {
  RetailOptions opt;
  opt.num_products = 6;
  opt.num_stores = 4;
  opt.num_days = 5;
  opt.num_rows = 300;
  auto data = MakeRetailWorkload(opt);
  ASSERT_TRUE(data.ok());
  const StatisticalObject& obj = data->object;

  std::string text = ExportObject(obj);
  auto back = ImportObject(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  // Structure survives.
  EXPECT_EQ(back->name(), obj.name());
  ASSERT_EQ(back->dimensions().size(), obj.dimensions().size());
  for (size_t i = 0; i < obj.dimensions().size(); ++i) {
    EXPECT_EQ(back->dimensions()[i].name(), obj.dimensions()[i].name());
    EXPECT_EQ(back->dimensions()[i].kind(), obj.dimensions()[i].kind());
    EXPECT_EQ(back->dimensions()[i].hierarchies().size(),
              obj.dimensions()[i].hierarchies().size());
  }
  ASSERT_EQ(back->measures().size(), obj.measures().size());
  for (size_t i = 0; i < obj.measures().size(); ++i) {
    EXPECT_EQ(back->measures()[i].name, obj.measures()[i].name);
    EXPECT_EQ(back->measures()[i].type, obj.measures()[i].type);
    EXPECT_EQ(back->measures()[i].default_fn, obj.measures()[i].default_fn);
  }

  // Hierarchy content survives (links, ID dependency, completeness).
  auto store = back->DimensionNamed("store");
  ASSERT_TRUE(store.ok());
  auto geo = (*store)->HierarchyNamed("by_city");
  ASSERT_TRUE(geo.ok());
  EXPECT_TRUE((*geo)->id_dependent());
  EXPECT_TRUE((*geo)->IsDeclaredComplete(0, "qty"));
  auto orig_geo = (*obj.DimensionNamed("store"))->HierarchyNamed("by_city");
  EXPECT_EQ((*geo)->ValuesAt(1).size(), (*orig_geo)->ValuesAt(1).size());

  // Cells survive exactly.
  auto eq = MacroDataEqual(obj, *back, 1e-9);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(ExportImportTest, MutationFuzz) {
  // Mutated exports must either import cleanly or fail with a Status —
  // never crash or silently mis-shape the object.
  RetailOptions opt;
  opt.num_products = 4;
  opt.num_stores = 2;
  opt.num_days = 3;
  opt.num_rows = 60;
  auto data = MakeRetailWorkload(opt);
  ASSERT_TRUE(data.ok());
  std::string text = ExportObject(data->object);

  // Deterministic mutations: drop a line, duplicate a line, truncate.
  std::vector<std::string> lines;
  {
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      lines.push_back(text.substr(start, end - start));
      start = end + 1;
    }
  }
  for (size_t drop = 0; drop < lines.size(); drop += 3) {
    std::string mutated;
    for (size_t i = 0; i < lines.size(); ++i)
      if (i != drop) mutated += lines[i] + "\n";
    auto r = ImportObject(mutated);  // must not crash
    if (r.ok()) {
      // If it imported, the object must be internally consistent.
      EXPECT_EQ(r->data().num_columns(),
                r->dimensions().size() + r->measures().size());
    }
  }
  for (size_t cut = 1; cut < text.size(); cut += text.size() / 7) {
    auto r = ImportObject(text.substr(0, cut));
    if (r.ok()) {
      EXPECT_EQ(r->data().num_columns(),
                r->dimensions().size() + r->measures().size());
    }
  }
}

TEST(ExportImportTest, RejectsGarbage) {
  EXPECT_FALSE(ImportObject("").ok());
  EXPECT_FALSE(ImportObject("not a header\n").ok());
  EXPECT_FALSE(
      ImportObject("# statcube-object v1\n# bogus,tag\n# end\n").ok());
  EXPECT_FALSE(ImportObject("# statcube-object v1\n"
                            "# link,ghost,0,\"a\",\"b\"\n# end\n")
                   .ok());
}

}  // namespace
}  // namespace statcube
