// Randomized algebraic properties of the S-operators: commutation,
// composition, and conservation laws that must hold on any statistical
// object. Complements the example-driven olap_operators_test.

#include <gtest/gtest.h>

#include "statcube/common/rng.h"
#include "statcube/olap/homomorphism.h"
#include "statcube/olap/operators.h"

namespace statcube {
namespace {

// A random 3-d object with a strict 2-level hierarchy on dim "c".
StatisticalObject MakeRandomObject(uint64_t seed, int cells) {
  Rng rng(seed);
  StatisticalObject obj("rand");
  (void)obj.AddDimension(Dimension("a"));
  (void)obj.AddDimension(Dimension("b"));
  Dimension c("c");
  ClassificationHierarchy h("ch", {"c", "cgroup"});
  for (int i = 0; i < 12; ++i)
    (void)h.Link(0, Value("c" + std::to_string(i)),
                 Value("g" + std::to_string(i % 3)));
  h.DeclareComplete(0, "m");
  c.AddHierarchy(h);
  (void)obj.AddDimension(c);
  (void)obj.AddMeasure({"m", "", MeasureType::kFlow, AggFn::kSum, ""});
  for (int i = 0; i < cells; ++i) {
    (void)obj.AddCell({Value("a" + std::to_string(rng.Uniform(5))),
                       Value("b" + std::to_string(rng.Uniform(4))),
                       Value("c" + std::to_string(rng.Uniform(12)))},
                      {Value(double(rng.Uniform(1000)))});
  }
  return obj;
}

double Total(const StatisticalObject& obj) {
  size_t m = obj.data().num_columns() - 1;
  double t = 0;
  for (const Row& r : obj.data().rows()) t += r[m].AsDouble();
  return t;
}

class OperatorProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OperatorProperties, ProjectionOrderIrrelevant) {
  auto obj = MakeRandomObject(GetParam(), 300);
  OperatorOptions off{.enforce_summarizability = false};
  auto ab = SProject(*SProject(obj, "a", off), "b", off);
  auto ba = SProject(*SProject(obj, "b", off), "a", off);
  ASSERT_TRUE(ab.ok() && ba.ok());
  auto eq = MacroDataEqual(*ab, *ba, 1e-9);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(OperatorProperties, SelectThenProjectEqualsProjectThenSelect) {
  // Selection on a dimension unaffected by the projection commutes.
  auto obj = MakeRandomObject(GetParam() + 10, 300);
  OperatorOptions off{.enforce_summarizability = false};
  std::vector<Value> keep = {Value("a1"), Value("a3")};
  auto sel_first = SProject(*SSelect(obj, "a", keep), "b", off);
  auto proj_first = SSelect(*SProject(obj, "b", off), "a", keep);
  ASSERT_TRUE(sel_first.ok() && proj_first.ok());
  auto eq = MacroDataEqual(*sel_first, *proj_first, 1e-9);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(OperatorProperties, RollupThenProjectEqualsProjectThenRollup) {
  auto obj = MakeRandomObject(GetParam() + 20, 300);
  OperatorOptions off{.enforce_summarizability = false};
  auto r1 = SProject(*SAggregate(obj, "c", "ch", 1, off), "a", off);
  auto r2 = SAggregate(*SProject(obj, "a", off), "c", "ch", 1, off);
  ASSERT_TRUE(r1.ok() && r2.ok());
  auto eq = MacroDataEqual(*r1, *r2, 1e-9);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(OperatorProperties, DiceEqualsSequentialSelect) {
  auto obj = MakeRandomObject(GetParam() + 30, 300);
  std::vector<DiceSpec> specs = {
      {"a", {Value("a0"), Value("a2")}},
      {"c", {Value("c1"), Value("c5"), Value("c9")}}};
  auto diced = Dice(obj, specs);
  auto seq = SSelect(*SSelect(obj, "a", specs[0].values), "c",
                     specs[1].values);
  ASSERT_TRUE(diced.ok() && seq.ok());
  auto eq = MacroDataEqual(*diced, *seq, 1e-9);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(OperatorProperties, StrictRollupConservesFlowTotals) {
  auto obj = MakeRandomObject(GetParam() + 40, 300);
  auto rolled = SAggregate(obj, "c", "ch", 1);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_NEAR(Total(obj), Total(*rolled), 1e-6);
  // And projection conserves too.
  auto projected = SProject(obj, "b");
  ASSERT_TRUE(projected.ok());
  EXPECT_NEAR(Total(obj), Total(*projected), 1e-6);
}

TEST_P(OperatorProperties, SelectIsIdempotent) {
  auto obj = MakeRandomObject(GetParam() + 50, 200);
  std::vector<Value> keep = {Value("b0"), Value("b2")};
  auto once = SSelect(obj, "b", keep);
  ASSERT_TRUE(once.ok());
  auto twice = SSelect(*once, "b", keep);
  ASSERT_TRUE(twice.ok());
  auto eq = MacroDataEqual(*once, *twice, 1e-9);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(OperatorProperties, UnionIsCommutative) {
  auto obj1 = MakeRandomObject(GetParam() + 60, 150);
  auto obj2 = MakeRandomObject(GetParam() + 70, 150);
  auto u12 = SUnion(obj1, obj2);
  auto u21 = SUnion(obj2, obj1);
  ASSERT_TRUE(u12.ok() && u21.ok());
  auto eq = MacroDataEqual(*u12, *u21, 1e-9);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(OperatorProperties, ConsolidateIsIdempotent) {
  auto obj = MakeRandomObject(GetParam() + 80, 400);
  auto once = Consolidate(obj);
  ASSERT_TRUE(once.ok());
  auto twice = Consolidate(*once);
  ASSERT_TRUE(twice.ok());
  auto eq = MacroDataEqual(*once, *twice, 1e-9);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  EXPECT_NEAR(Total(obj), Total(*once), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorProperties,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull));

}  // namespace
}  // namespace statcube
