// Tests for BitVector and PackedIntVector (bit-transposed file substrate).

#include "statcube/storage/bitvector.h"

#include <gtest/gtest.h>

#include "statcube/common/rng.h"

namespace statcube {
namespace {

TEST(BitVectorTest, PushAndGet) {
  BitVector bv;
  for (int i = 0; i < 200; ++i) bv.PushBack(i % 3 == 0);
  ASSERT_EQ(bv.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(bv.Get(size_t(i)), i % 3 == 0) << i;
}

TEST(BitVectorTest, SetAndClear) {
  BitVector bv(130, false);
  bv.Set(0, true);
  bv.Set(64, true);
  bv.Set(129, true);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  bv.Set(64, false);
  EXPECT_FALSE(bv.Get(64));
}

TEST(BitVectorTest, PopCountAndRank) {
  BitVector bv;
  for (int i = 0; i < 1000; ++i) bv.PushBack(i % 5 == 0);
  EXPECT_EQ(bv.PopCount(), 200u);
  EXPECT_EQ(bv.Rank(0), 0u);
  EXPECT_EQ(bv.Rank(1), 1u);    // bit 0 is set
  EXPECT_EQ(bv.Rank(5), 1u);    // bits 0..4: only bit 0
  EXPECT_EQ(bv.Rank(6), 2u);    // plus bit 5
  EXPECT_EQ(bv.Rank(1000), 200u);
}

TEST(BitVectorTest, BooleanOps) {
  BitVector a(128), b(128);
  for (size_t i = 0; i < 128; ++i) {
    a.Set(i, i % 2 == 0);
    b.Set(i, i % 3 == 0);
  }
  BitVector and_v = a;
  and_v.AndWith(b);
  BitVector or_v = a;
  or_v.OrWith(b);
  for (size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(and_v.Get(i), (i % 2 == 0) && (i % 3 == 0));
    EXPECT_EQ(or_v.Get(i), (i % 2 == 0) || (i % 3 == 0));
  }
}

TEST(BitVectorTest, NegateKeepsTailZero) {
  BitVector a(70, false);
  a.Negate();
  EXPECT_EQ(a.PopCount(), 70u);  // only logical bits flipped
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(a.Get(i));
}

TEST(PackedIntVectorTest, BitsFor) {
  EXPECT_EQ(PackedIntVector::BitsFor(1), 1u);
  EXPECT_EQ(PackedIntVector::BitsFor(2), 1u);
  EXPECT_EQ(PackedIntVector::BitsFor(3), 2u);
  EXPECT_EQ(PackedIntVector::BitsFor(8), 3u);
  EXPECT_EQ(PackedIntVector::BitsFor(9), 4u);
  EXPECT_EQ(PackedIntVector::BitsFor(1ull << 33), 33u);
}

TEST(PackedIntVectorTest, RoundTripVariousWidths) {
  Rng rng(7);
  for (unsigned bits : {1u, 3u, 7u, 13u, 31u, 64u}) {
    PackedIntVector v(bits);
    std::vector<uint64_t> ref;
    uint64_t mask = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    for (int i = 0; i < 500; ++i) {
      uint64_t x = rng.Next() & mask;
      v.PushBack(x);
      ref.push_back(x);
    }
    ASSERT_EQ(v.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(v.Get(i), ref[i]) << "bits=" << bits << " i=" << i;
  }
}

TEST(PackedIntVectorTest, PackingSavesSpace) {
  // 2-bit values: packed storage should be ~32x smaller than uint64.
  PackedIntVector v(2);
  for (int i = 0; i < 64000; ++i) v.PushBack(uint64_t(i % 4));
  EXPECT_LE(v.ByteSize(), 64000u * 8 / 30);
}

}  // namespace
}  // namespace statcube
