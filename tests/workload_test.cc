// Tests for the workload generators: determinism, structural properties the
// paper calls out, and cross-representation consistency for retail.

#include <gtest/gtest.h>

#include "statcube/core/summarizability.h"
#include "statcube/olap/operators.h"
#include "statcube/workload/census.h"
#include "statcube/workload/hmo.h"
#include "statcube/workload/retail.h"
#include "statcube/workload/stocks.h"

namespace statcube {
namespace {

TEST(CensusWorkloadTest, StructureAndDeterminism) {
  auto a = MakeCensusWorkload({});
  auto b = MakeCensusWorkload({});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->data().num_rows(), b->data().num_rows());
  EXPECT_EQ(a->data().at(0, 5), b->data().at(0, 5));
  // 4 states x 6 counties x 4 races x 2 sexes x 9 ages x 3 years cells.
  EXPECT_EQ(a->data().num_rows(), 4u * 6 * 4 * 2 * 9 * 3);
  auto county = a->DimensionNamed("county");
  ASSERT_TRUE(county.ok());
  EXPECT_EQ((*county)->cardinality(), 24u);
  EXPECT_EQ((*county)->hierarchies().size(), 1u);
}

TEST(CensusWorkloadTest, GeoRollupIsSummarizable) {
  auto obj = MakeCensusWorkload({});
  ASSERT_TRUE(obj.ok());
  // Counties partition states; population rolls up legally.
  auto rep = CheckRollup(*obj, "county", "geo", 0, 1, "population", AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->summarizable) << rep->ToStatus().ToString();
  // ... all the way to regions (the 3-level geography).
  rep = CheckRollup(*obj, "county", "geo", 0, 2, "population", AggFn::kSum);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->summarizable) << rep->ToStatus().ToString();
  // ... but summing population over years is refused.
  auto over_time = SProject(*obj, "year");
  EXPECT_EQ(over_time.status().code(), StatusCode::kNotSummarizable);
}

TEST(CensusWorkloadTest, TwoStepRollupEqualsDirectRegionRollup) {
  CensusOptions small;
  small.num_states = 4;
  small.counties_per_state = 2;
  small.num_races = 2;
  small.num_age_groups = 2;
  small.num_years = 1;
  auto obj = MakeCensusWorkload(small);
  ASSERT_TRUE(obj.ok());
  auto direct = SAggregate(*obj, "county", "geo", 2);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto by_state = SAggregate(*obj, "county", "geo", 1);
  ASSERT_TRUE(by_state.ok());
  auto two_step = SAggregate(*by_state, "state", "geo", 1,
                             {.enforce_summarizability = false});
  ASSERT_TRUE(two_step.ok()) << two_step.status().ToString();
  EXPECT_EQ(direct->data().num_rows(), two_step->data().num_rows());
  size_t pi = *direct->data().schema().IndexOf("population");
  double t1 = 0, t2 = 0;
  for (const Row& r : direct->data().rows()) t1 += r[pi].AsDouble();
  for (const Row& r : two_step->data().rows()) t2 += r[pi].AsDouble();
  EXPECT_NEAR(t1, t2, 1e-6);
}

TEST(CensusWorkloadTest, MicroDataShape) {
  auto micro = MakeCensusMicroData(500, {});
  ASSERT_TRUE(micro.ok());
  EXPECT_EQ(micro->num_rows(), 500u);
  EXPECT_EQ(micro->num_columns(), 7u);
}

TEST(RetailWorkloadTest, RepresentationsAgree) {
  RetailOptions opt;
  opt.num_rows = 2000;
  auto data = MakeRetailWorkload(opt);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->star.fact().num_rows(), 2000u);
  EXPECT_EQ(data->flat.num_rows(), 2000u);

  // Total qty agrees between star and flat and object.
  double star_total = 0;
  size_t qty_idx = *data->star.fact().schema().IndexOf("qty");
  for (const Row& r : data->star.fact().rows())
    star_total += r[qty_idx].AsDouble();
  double flat_total = 0;
  size_t fq = *data->flat.schema().IndexOf("qty");
  for (const Row& r : data->flat.rows()) flat_total += r[fq].AsDouble();
  double obj_total = 0;
  size_t oq = *data->object.data().schema().IndexOf("qty");
  for (const Row& r : data->object.data().rows())
    obj_total += r[oq].AsDouble();
  EXPECT_DOUBLE_EQ(star_total, flat_total);
  EXPECT_DOUBLE_EQ(star_total, obj_total);

  // Per-city totals agree between the star schema join path and the
  // object's hierarchy roll-up path.
  auto star_by_city =
      data->star.Aggregate({"city"}, {{AggFn::kSum, "qty", "total"}});
  ASSERT_TRUE(star_by_city.ok());
  auto obj_by_city = SAggregate(data->object, "store", "by_city", 1);
  ASSERT_TRUE(obj_by_city.ok()) << obj_by_city.status().ToString();
  auto rolled = SProject(*obj_by_city, "product",
                         {.enforce_summarizability = false});
  ASSERT_TRUE(rolled.ok());
  auto rolled2 = SProject(*rolled, "day", {.enforce_summarizability = false});
  ASSERT_TRUE(rolled2.ok());
  ASSERT_EQ(rolled2->data().num_rows(), star_by_city->num_rows());
  size_t cq = *rolled2->data().schema().IndexOf("qty");
  for (size_t i = 0; i < star_by_city->num_rows(); ++i) {
    const Value& city = star_by_city->at(i, 0);
    bool found = false;
    for (const Row& r : rolled2->data().rows()) {
      if (r[0] == city) {
        found = true;
        EXPECT_DOUBLE_EQ(r[cq].AsDouble(), star_by_city->at(i, 1).AsDouble());
      }
    }
    EXPECT_TRUE(found) << city.ToString();
  }
}

TEST(RetailWorkloadTest, MultipleClassificationsOnProduct) {
  auto data = MakeRetailWorkload({.num_rows = 100});
  ASSERT_TRUE(data.ok());
  auto product = data->object.DimensionNamed("product");
  ASSERT_TRUE(product.ok());
  EXPECT_EQ((*product)->hierarchies().size(), 2u);
  EXPECT_TRUE((*product)->HierarchyNamed("by_category").ok());
  EXPECT_TRUE((*product)->HierarchyNamed("by_price_range").ok());
  // The store hierarchy is ID-dependent (store numbers unique per city).
  auto store = data->object.DimensionNamed("store");
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->hierarchies()[0].id_dependent());
}

TEST(StockWorkloadTest, WeekdayTimeSeriesAndMeasureTypes) {
  auto obj = MakeStockWorkload({});
  ASSERT_TRUE(obj.ok());
  // 20 stocks x 8 weeks x 5 weekdays.
  EXPECT_EQ(obj->data().num_rows(), 20u * 8 * 5);
  auto close = obj->MeasureNamed("close");
  ASSERT_TRUE(close.ok());
  EXPECT_EQ((*close)->type, MeasureType::kStock);
  // Summing closing prices over days is refused; the close measure's
  // declared function is avg, so SProject itself is legal.
  auto sum_check = CheckProjectOut(*obj, "day", "close", AggFn::kSum);
  ASSERT_TRUE(sum_check.ok());
  EXPECT_FALSE(sum_check->summarizable);
  auto avg_project = SProject(*obj, "day", {.enforce_summarizability = true});
  EXPECT_TRUE(avg_project.ok()) << avg_project.status().ToString();
  auto week_avg = SAggregate(*obj, "day", "calendar", 1,
                             {.enforce_summarizability = false});
  ASSERT_TRUE(week_avg.ok());
  EXPECT_EQ(week_avg->data().num_rows(), 20u * 8);
}

TEST(StockWorkloadTest, TwoClassificationsOnStocks) {
  auto obj = MakeStockWorkload({});
  ASSERT_TRUE(obj.ok());
  auto stock = obj->DimensionNamed("stock");
  ASSERT_TRUE(stock.ok());
  EXPECT_EQ((*stock)->hierarchies().size(), 2u);
}

TEST(HmoWorkloadTest, NonStrictDiseaseClassification) {
  auto obj = MakeHmoWorkload({});
  ASSERT_TRUE(obj.ok());
  auto disease = obj->DimensionNamed("disease");
  ASSERT_TRUE(disease.ok());
  const auto& h = (*disease)->hierarchies()[0];
  EXPECT_FALSE(h.IsStrict());  // lung cancer et al.
  // The summarizability checker therefore refuses the roll-up.
  auto r = SAggregate(*obj, "disease", "by_category", 1);
  EXPECT_EQ(r.status().code(), StatusCode::kNotSummarizable);
  // Forcing it demonstrates the double count: the rolled-up total exceeds
  // the true total.
  double true_total = 0;
  size_t ci = *obj->data().schema().IndexOf("cost");
  for (const Row& row : obj->data().rows()) true_total += row[ci].AsDouble();
  auto forced = SAggregate(*obj, "disease", "by_category", 1,
                           {.enforce_summarizability = false});
  ASSERT_TRUE(forced.ok());
  double forced_total = 0;
  size_t fi = *forced->data().schema().IndexOf("cost");
  for (const Row& row : forced->data().rows())
    forced_total += row[fi].AsDouble();
  EXPECT_GT(forced_total, true_total);
}

TEST(HmoWorkloadTest, MicroDataDeterministic) {
  auto a = MakeHmoMicroData({});
  auto b = MakeHmoMicroData({});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(a->at(i, 4), b->at(i, 4));
}

}  // namespace
}  // namespace statcube
