// End-to-end tests for the human-facing status endpoints added in
// observability v2: /statusz (dependency-free HTML with sparklines fed by a
// MetricSampler) and /tracez (recent trace trees, HTML and JSON), plus the
// strict query-string contract (?n= limits, per-endpoint content types,
// 400 on malformed input) and the configurable flight-recorder capacity.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "json_checker.h"
#include "statcube/obs/flight_recorder.h"
#include "statcube/obs/http_server.h"
#include "statcube/obs/metrics.h"
#include "statcube/obs/timeseries_ring.h"
#include "statcube/query/parser.h"
#include "statcube/workload/retail.h"

namespace statcube {
namespace {

// --------------------------------------------------- tiny blocking client

std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return "";
  }
  std::string req = "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n"
                    "Connection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return "";
    }
    off += size_t(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, size_t(n));
  close(fd);
  return resp;
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 200 ..." — the code sits after the first space.
  size_t sp = response.find(' ');
  return sp == std::string::npos ? -1 : atoi(response.c_str() + sp + 1);
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

std::string ContentTypeOf(const std::string& response) {
  size_t pos = response.find("Content-Type: ");
  if (pos == std::string::npos) return "";
  size_t end = response.find("\r\n", pos);
  pos += strlen("Content-Type: ");
  return response.substr(pos, end - pos);
}

size_t CountOccurrences(const std::string& haystack, const std::string& sub) {
  size_t count = 0;
  for (size_t pos = haystack.find(sub); pos != std::string::npos;
       pos = haystack.find(sub, pos + sub.size()))
    ++count;
  return count;
}

// One server + populated recorder/metrics shared by every test: a few
// profiled queries (all "slow" via a 1us threshold) and two deterministic
// sampler ticks, so /statusz has sparkline data and /tracez has traces.
class StatuszTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    obs::SetEnabled(true);
    obs::FlightRecorder::Global().Clear();
    obs::FlightRecorder::Global().SetSlowQueryThresholdUs(1);
    data_ = std::make_unique<RetailData>(*MakeRetailWorkload());
    QueryOptions opt;
    opt.threads = 2;
    for (const char* text :
         {"SELECT sum(amount) BY city", "SELECT sum(amount) BY store",
          "SELECT sum(qty) BY category"}) {
      auto r = QueryProfiled(data_->object, text, opt);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }

    obs::MetricSamplerOptions mopt;
    mopt.interval_ms = 10;
    mopt.ring_capacity = 16;
    mopt.percentile_window = 4;
    sampler_ = std::make_unique<obs::MetricSampler>(mopt);
    sampler_->AddDefaultStatuszSeries();
    sampler_->SampleOnce();
    sampler_->SampleOnce();

    obs::StatsServerOptions sopt;
    sopt.port = 0;
    sopt.sampler = sampler_.get();
    server_ = std::make_unique<obs::StatsServer>(sopt);
    ASSERT_TRUE(server_->Start().ok());
    port_ = server_->port();
  }

  static void TearDownTestSuite() {
    server_->Stop();
    server_.reset();
    sampler_.reset();
    data_.reset();
    obs::FlightRecorder::Global().SetSlowQueryThresholdUs(20000);
    obs::SetEnabled(false);
  }

  static std::unique_ptr<RetailData> data_;
  static std::unique_ptr<obs::MetricSampler> sampler_;
  static std::unique_ptr<obs::StatsServer> server_;
  static uint16_t port_;
};

std::unique_ptr<RetailData> StatuszTest::data_;
std::unique_ptr<obs::MetricSampler> StatuszTest::sampler_;
std::unique_ptr<obs::StatsServer> StatuszTest::server_;
uint16_t StatuszTest::port_ = 0;

// ------------------------------------------------------------- /statusz

TEST_F(StatuszTest, StatuszServesHtmlWithSparklinesAndSlowQueries) {
  std::string resp = HttpGet(port_, "/statusz");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_EQ(ContentTypeOf(resp), "text/html; charset=utf-8");
  std::string body = Body(resp);
  EXPECT_NE(body.find("id=\"sparklines\""), std::string::npos);
  // The default series are all present, with the sliding percentiles.
  for (const char* series :
       {"statcube.query.latency_us.rate", "statcube.query.latency_us.p50",
        "statcube.query.latency_us.p99", "statcube.cache.hit_rate",
        "statcube.exec.morsels.rate"}) {
    EXPECT_NE(body.find(series), std::string::npos) << series;
  }
  EXPECT_NE(body.find("uptime_s"), std::string::npos);
  EXPECT_NE(body.find("build"), std::string::npos);
  // Three slow queries were recorded; each links to its retained profile.
  EXPECT_NE(body.find("slow"), std::string::npos);
  EXPECT_NE(body.find("href=\"/profiles/"), std::string::npos);
}

TEST_F(StatuszTest, StatuszWithoutSamplerStillRenders) {
  obs::StatsServerOptions sopt;
  sopt.port = 0;
  obs::StatsServer bare(sopt);
  ASSERT_TRUE(bare.Start().ok());
  std::string resp = HttpGet(bare.port(), "/statusz");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_NE(Body(resp).find("no sampler configured"), std::string::npos);
  bare.Stop();
}

TEST_F(StatuszTest, StatuszRejectsMalformedQueryString) {
  EXPECT_EQ(StatusOf(HttpGet(port_, "/statusz?x")), 400);
  EXPECT_EQ(StatusOf(HttpGet(port_, "/statusz?=v")), 400);
}

// -------------------------------------------------------------- /tracez

TEST_F(StatuszTest, TracezHtmlShowsRecentTraceTrees) {
  std::string resp = HttpGet(port_, "/tracez");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_EQ(ContentTypeOf(resp), "text/html; charset=utf-8");
  std::string body = Body(resp);
  // Each recorded query appears with its span tree (root span "query").
  EXPECT_NE(body.find("SELECT sum(amount) BY city"), std::string::npos);
  EXPECT_NE(body.find("query"), std::string::npos);
  EXPECT_NE(body.find("format=json"), std::string::npos);
}

TEST_F(StatuszTest, TracezJsonIsValidAndCarriesSpans) {
  std::string resp = HttpGet(port_, "/tracez?format=json");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_EQ(ContentTypeOf(resp), "application/json");
  std::string body = Body(resp);
  EXPECT_TRUE(JsonChecker(body).Valid()) << body;
  EXPECT_NE(body.find("\"traces\":"), std::string::npos);
  EXPECT_NE(body.find("\"spans\":"), std::string::npos);
  EXPECT_NE(body.find("\"thread\":"), std::string::npos);
  EXPECT_NE(body.find("\"dropped_spans\":"), std::string::npos);
}

TEST_F(StatuszTest, TracezHonorsLimitAndRejectsBadParams) {
  std::string body = Body(HttpGet(port_, "/tracez?format=json&n=1"));
  ASSERT_TRUE(JsonChecker(body).Valid()) << body;
  EXPECT_EQ(CountOccurrences(body, "\"id\":"), 1u);

  EXPECT_EQ(StatusOf(HttpGet(port_, "/tracez?format=xml")), 400);
  EXPECT_EQ(StatusOf(HttpGet(port_, "/tracez?n=abc")), 400);
  EXPECT_EQ(StatusOf(HttpGet(port_, "/tracez?n=")), 400);
  EXPECT_EQ(StatusOf(HttpGet(port_, "/tracez?format")), 400);
}

// ------------------------------------------- /profiles limits and types

TEST_F(StatuszTest, ProfilesHonorsNAndRejectsBadValues) {
  std::string resp = HttpGet(port_, "/profiles?n=1");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_EQ(ContentTypeOf(resp), "application/json");
  std::string body = Body(resp);
  ASSERT_TRUE(JsonChecker(body).Valid()) << body;
  EXPECT_EQ(CountOccurrences(body, "{\"id\":"), 1u);

  // The legacy alias still works.
  body = Body(HttpGet(port_, "/profiles?limit=2"));
  EXPECT_EQ(CountOccurrences(body, "{\"id\":"), 2u);

  EXPECT_EQ(StatusOf(HttpGet(port_, "/profiles?n=abc")), 400);
  EXPECT_EQ(StatusOf(HttpGet(port_, "/profiles?n=1&bogus")), 400);
  EXPECT_EQ(StatusOf(HttpGet(port_, "/profiles?n=-1")), 400);
}

TEST_F(StatuszTest, EveryEndpointDeclaresItsContentType) {
  EXPECT_EQ(ContentTypeOf(HttpGet(port_, "/metrics")),
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(ContentTypeOf(HttpGet(port_, "/varz")), "application/json");
  EXPECT_EQ(ContentTypeOf(HttpGet(port_, "/profiles")), "application/json");
  EXPECT_EQ(ContentTypeOf(HttpGet(port_, "/statusz")),
            "text/html; charset=utf-8");
  EXPECT_EQ(ContentTypeOf(HttpGet(port_, "/tracez")),
            "text/html; charset=utf-8");
  EXPECT_EQ(ContentTypeOf(HttpGet(port_, "/tracez?format=json")),
            "application/json");
}

// ------------------------------------------------ flight-recorder sizing

TEST_F(StatuszTest, FlightCapacityIsConfigurableAndBounded) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  size_t original = rec.capacity();

  EXPECT_FALSE(rec.SetCapacity(0));
  EXPECT_FALSE(rec.SetCapacity(obs::FlightRecorder::kMaxCapacity + 1));
  EXPECT_EQ(rec.capacity(), original);  // rejected calls change nothing

  ASSERT_TRUE(rec.SetCapacity(2));
  EXPECT_EQ(rec.capacity(), 2u);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetGauge("statcube.recorder.capacity")
                .Value(),
            2.0);
  // Shrinking evicted down to the newest two entries.
  EXPECT_LE(rec.Snapshot().size(), 2u);

  // New recordings respect the smaller ring.
  QueryOptions opt;
  for (int i = 0; i < 4; ++i) {
    auto r = QueryProfiled(data_->object, "SELECT sum(amount) BY city", opt);
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(rec.Snapshot().size(), 2u);

  ASSERT_TRUE(rec.SetCapacity(original));
}

}  // namespace
}  // namespace statcube
