// Minimal recursive-descent JSON syntax checker shared by the obs tests
// (obs_test, obs_serving_test, obs_concurrency_test): enough to assert that
// every serializer in src/statcube/obs emits real JSON, including when
// names/fields contain quotes, backslashes, and control characters.

#ifndef STATCUBE_TESTS_JSON_CHECKER_H_
#define STATCUBE_TESTS_JSON_CHECKER_H_

#include <cctype>
#include <cstring>
#include <string>

namespace statcube {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      // A raw control character inside a string is invalid JSON — the
      // escaping bugs this checker exists to catch.
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    size_t n = strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace statcube

#endif  // STATCUBE_TESTS_JSON_CHECKER_H_
